"""Parallel campaign execution: sharding paired visits across processes.

The paper's protocol is embarrassingly parallel: every ``(vantage,
probe, page)`` paired visit is an isolated simulation with its own
:class:`~repro.events.loop.EventLoop` and RNG stream.  This module
exploits that:

* **Work units** are ``(campaign, vantage, probe, page-chunk)`` tuples.
  A worker process replays each page's paired visit (H2 then H3,
  ``visits_per_page`` times each, edge caches warmed per page) in a
  fresh single-page simulation.
* **Seeding** is derived per ``(campaign seed, vantage, probe, page)``
  with a stable hash — not Python's process-randomized ``hash()`` — so
  any worker count, chunking, or scheduling order reproduces the
  ``workers=1`` run bit-for-bit.
* **The process boundary** carries typed
  :class:`~repro.measurement.outcome.VisitOutcome` values rendered to
  compact dicts via their single ``to_dict``/``from_dict`` pair, never
  live simulation object graphs.
* **Multiple campaigns** (e.g. every loss rate × repetition of the
  Fig. 9 sweep) can share one pool: :func:`run_campaigns` takes a dict
  of configs and every paired visit of every config becomes one more
  independent shard.

``workers <= 1`` falls back to an in-process loop over the same work
units — no pool, no serialization round trip, identical results.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from typing import Hashable, Iterable, Sequence

from repro.browser.browser import H2_ONLY, H3_ENABLED
from repro.check.context import InvariantViolation
from repro.measurement.campaign import (
    CampaignConfig,
    CampaignResult,
    PairedVisit,
)
from repro.measurement.outcome import VisitFailure, VisitOutcome
from repro.measurement.probe import Probe
from repro.measurement.vantage import VantagePoint, default_vantage_points
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse


def derive_seed(
    base_seed: int, vp_index: int, probe_index: int, page_index: int
) -> int:
    """Stable per-visit seed for ``(campaign, vantage, probe, page)``.

    Uses BLAKE2b (not ``hash()``, which is randomized per process) so
    every process — and every future session — derives the same stream.
    """
    key = f"{base_seed}:{vp_index}:{probe_index}:{page_index}".encode()
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


def measure_paired_visit(
    universe: WebUniverse,
    vantage: VantagePoint,
    vp_index: int,
    probe_index: int,
    config: CampaignConfig,
    page: Webpage,
    page_index: int,
) -> PairedVisit:
    """Measure one page from one probe in a fresh, isolated simulation.

    This is *the* unit of campaign work — the serial fallback and the
    worker processes both call it, which is what makes parallel runs
    reproduce serial ones exactly: nothing (event-loop clock, RNG
    position, cache state) leaks between pages.  When the config asks
    for counters or traces, a per-visit-scoped ``ObsContext`` rides
    along; its payloads cross the process gap inside the visit dicts.
    """
    obs = None
    if config.collect_counters or config.trace:
        from repro.obs import ObsContext

        obs = ObsContext(trace=config.trace)
    check = None
    if config.strict:
        from repro.check import CheckContext

        check = CheckContext()
    probe = Probe(
        name=f"{vantage.name}-{probe_index}",
        universe=universe,
        net_profile=vantage.net_profile(
            loss_rate=config.loss_rate, rate_mbps=config.rate_mbps
        ),
        seed=derive_seed(config.seed, vp_index, probe_index, page_index),
        transport_config=config.transport_config,
        use_session_tickets=config.use_session_tickets,
        obs=obs,
        fault_profile=config.fault_profile,
        check=check,
    )
    if config.warm_popular:
        probe.warm_edges((page,))
    h2 = probe.measure_page(page, H2_ONLY, visits=config.visits_per_page)
    h3 = probe.measure_page(page, H3_ENABLED, visits=config.visits_per_page)
    return PairedVisit(page=page, probe_name=probe.name, h2=h2, h3=h3)


def measure_visit_outcome(
    universe: WebUniverse,
    vantage: VantagePoint,
    vp_index: int,
    probe_index: int,
    config: CampaignConfig,
    page: Webpage,
    page_index: int,
) -> VisitOutcome:
    """Measure one paired visit and wrap it as a :class:`VisitOutcome`.

    Graceful degradation lives here: with a fault profile active, a
    visit that raises out of the simulator becomes a ``failed`` outcome
    (recorded campaign-side as a :class:`VisitFailure`) instead of
    poisoning the whole run.  Fault-free runs deliberately get *no*
    exception handling — a crash there is a bug and must stay loud.
    """
    if config.fault_profile is None:
        paired = measure_paired_visit(
            universe, vantage, vp_index, probe_index, config, page, page_index
        )
        return VisitOutcome.from_visits(page_index, paired.h2, paired.h3)
    try:
        paired = measure_paired_visit(
            universe, vantage, vp_index, probe_index, config, page, page_index
        )
    except InvariantViolation:
        # A failed invariant is a simulator bug, not a simulated fault:
        # it must stay loud even under graceful degradation.
        raise
    except Exception as exc:  # noqa: BLE001 — degrade, don't poison the run
        return VisitOutcome.from_error(
            page_index, f"{type(exc).__name__}: {exc}"
        )
    return VisitOutcome.from_visits(page_index, paired.h2, paired.h3)


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

#: Per-worker context installed by the pool initializer.  Module-level so
#: it survives both ``fork`` (inherited) and ``spawn`` (re-initialized in
#: the fresh interpreter) start methods.
_WORKER_CTX: dict = {}

#: A work unit: ``(config key, vp_index, probe_index, page indices)``.
_WorkUnit = tuple[Hashable, int, int, tuple[int, ...]]


def _init_worker(
    universe: WebUniverse,
    vantage_points: tuple[VantagePoint, ...],
    configs: dict[Hashable, CampaignConfig],
    pages: tuple[Webpage, ...],
) -> None:
    _WORKER_CTX["universe"] = universe
    _WORKER_CTX["vantage_points"] = vantage_points
    _WORKER_CTX["configs"] = configs
    _WORKER_CTX["pages"] = pages


def _run_unit(unit: _WorkUnit) -> list[dict]:
    """Replay one work unit; outcomes cross the process gap as dicts."""
    key, vp_index, probe_index, page_indices = unit
    universe = _WORKER_CTX["universe"]
    vantage = _WORKER_CTX["vantage_points"][vp_index]
    config = _WORKER_CTX["configs"][key]
    pages = _WORKER_CTX["pages"]
    return [
        measure_visit_outcome(
            universe, vantage, vp_index, probe_index, config,
            pages[page_index], page_index,
        ).to_dict()
        for page_index in page_indices
    ]


def _chunked(indices: Sequence[int], chunk_size: int) -> Iterable[tuple[int, ...]]:
    for start in range(0, len(indices), chunk_size):
        yield tuple(indices[start : start + chunk_size])


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------


def run_campaigns(
    universe: WebUniverse,
    configs: dict[Hashable, CampaignConfig],
    pages: tuple[Webpage, ...] | None = None,
    vantage_points: tuple[VantagePoint, ...] | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    start_method: str | None = None,
) -> dict[Hashable, CampaignResult]:
    """Run one or more campaigns over shared worker processes.

    Every ``(config, vantage, probe, page-chunk)`` becomes an
    independent shard; results come back keyed like ``configs``, with
    each campaign's paired visits in the canonical serial order
    (vantage-major, then probe, then page).  With ``workers <= 1`` the
    same units run in-process, in the same order, with the same derived
    seeds — so worker count never changes a single result.
    """
    target_pages = tuple(pages if pages is not None else universe.pages)
    all_vps = tuple(
        vantage_points if vantage_points is not None else default_vantage_points()
    )

    # Deterministic unit list: configs in insertion order, vantage-major.
    units: list[_WorkUnit] = []
    for key, config in configs.items():
        vps = all_vps
        if config.max_vantage_points is not None:
            vps = vps[: config.max_vantage_points]
        page_indices = list(range(len(target_pages)))
        per_chunk = chunk_size if chunk_size is not None else _default_chunk_size(
            len(page_indices), workers
        )
        for vp_index in range(len(vps)):
            for probe_index in range(config.probes_per_vantage):
                for chunk in _chunked(page_indices, per_chunk):
                    units.append((key, vp_index, probe_index, chunk))

    if workers <= 1:
        unit_results = [_run_unit_inprocess(unit, universe, all_vps, configs,
                                            target_pages) for unit in units]
    else:
        ctx = multiprocessing.get_context(start_method)
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(universe, all_vps, configs, target_pages),
        ) as pool:
            raw = pool.map(_run_unit, units)
        unit_results = [
            [VisitOutcome.from_dict(doc) for doc in chunk_result]
            for chunk_result in raw
        ]

    # Reassemble per campaign, in canonical order.  ``pool.map``
    # preserves input order, so zipping units with results suffices.
    results: dict[Hashable, CampaignResult] = {}
    paired_by_key: dict[Hashable, list[PairedVisit]] = {key: [] for key in configs}
    failures_by_key: dict[Hashable, list[VisitFailure]] = {key: [] for key in configs}
    for (key, vp_index, probe_index, _), chunk_result in zip(units, unit_results):
        vantage = all_vps[vp_index]
        probe_name = f"{vantage.name}-{probe_index}"
        for outcome in chunk_result:
            if outcome.status == "failed":
                failures_by_key[key].append(
                    VisitFailure(
                        page_url=target_pages[outcome.page_index].url,
                        probe_name=probe_name,
                        error=outcome.error or "unknown",
                    )
                )
                continue
            paired_by_key[key].append(
                PairedVisit(
                    page=target_pages[outcome.page_index],
                    probe_name=probe_name,
                    h2=outcome.h2,
                    h3=outcome.h3,
                )
            )
    for key, config in configs.items():
        results[key] = CampaignResult(
            universe, config, paired_by_key[key], failures=failures_by_key[key]
        )
    return results


def _run_unit_inprocess(
    unit: _WorkUnit,
    universe: WebUniverse,
    vantage_points: tuple[VantagePoint, ...],
    configs: dict[Hashable, CampaignConfig],
    pages: tuple[Webpage, ...],
) -> list[VisitOutcome]:
    """Serial fallback: same units, no pool, no serialization round trip."""
    key, vp_index, probe_index, page_indices = unit
    vantage = vantage_points[vp_index]
    config = configs[key]
    return [
        measure_visit_outcome(
            universe, vantage, vp_index, probe_index, config,
            pages[page_index], page_index,
        )
        for page_index in page_indices
    ]


def _default_chunk_size(n_pages: int, workers: int) -> int:
    """A few chunks per worker balances load against pool overhead."""
    if workers <= 1:
        return max(1, n_pages)
    return max(1, -(-n_pages // (workers * 4)))


class ParallelCampaign:
    """A :class:`~repro.measurement.campaign.Campaign` with a worker pool.

    Thin convenience wrapper over :func:`run_campaigns` for the common
    one-config case::

        result = ParallelCampaign(universe, config, workers=4).run()
    """

    def __init__(
        self,
        universe: WebUniverse,
        config: CampaignConfig | None = None,
        vantage_points: tuple[VantagePoint, ...] | None = None,
        workers: int = 1,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self.universe = universe
        self.config = config or CampaignConfig()
        self.vantage_points = (
            vantage_points if vantage_points is not None else default_vantage_points()
        )
        self.workers = workers
        self.chunk_size = chunk_size
        self.start_method = start_method

    def run(self, pages: tuple[Webpage, ...] | None = None) -> CampaignResult:
        results = run_campaigns(
            self.universe,
            {"campaign": self.config},
            pages=pages,
            vantage_points=self.vantage_points,
            workers=self.workers,
            chunk_size=self.chunk_size,
            start_method=self.start_method,
        )
        return results["campaign"]
