"""Measurement harness: probes, vantage points, campaigns.

Reproduces the paper's collection protocol (Section III-B): three
CloudLab vantage points × three probes, each probe visiting every
target page with H2 and H3 through separate browser instances, visiting
twice so the second (cache-warm) visit is measured, terminating
connections and clearing caches between pages — plus the
consecutive-visit mode (Section VI-D) where session tickets survive
page transitions.

The single entry point for running measurements is
:func:`~repro.measurement.executor.execute` with a plan
(:class:`CampaignPlan`, :class:`MultiCampaignPlan` or
:class:`ConsecutivePlan`); ``Campaign.run``/``run_campaigns``/
``ConsecutiveVisitRunner.run*`` survive as deprecated facades.
"""

from repro.measurement.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    PairedVisit,
    SimConfig,
    TelemetryConfig,
)
from repro.measurement.consecutive import ConsecutiveRun, ConsecutiveVisitRunner
from repro.measurement.executor import (
    CampaignPlan,
    ConsecutivePlan,
    MultiCampaignPlan,
    PageSource,
    execute,
)
from repro.measurement.farm import ProbeNetProfile, ServerFarm
from repro.measurement.outcome import VisitFailure, VisitOutcome
from repro.measurement.parallel import (
    ParallelCampaign,
    derive_seed,
    measure_paired_visit,
    measure_visit_outcome,
    run_campaigns,
)
from repro.measurement.probe import Probe
from repro.measurement.report import (
    CampaignReport,
    ModeSummary,
    campaign_report,
    summary_report,
)
from repro.measurement.summary import (
    CampaignSummary,
    FixedGridHistogram,
    ModeFold,
)
from repro.measurement.vantage import (
    VantagePoint,
    default_vantage_points,
    global_vantage_points,
)

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignPlan",
    "CampaignReport",
    "CampaignResult",
    "CampaignSummary",
    "ConsecutivePlan",
    "ConsecutiveRun",
    "ConsecutiveVisitRunner",
    "FixedGridHistogram",
    "ModeFold",
    "ModeSummary",
    "MultiCampaignPlan",
    "PageSource",
    "PairedVisit",
    "ParallelCampaign",
    "Probe",
    "ProbeNetProfile",
    "ServerFarm",
    "SimConfig",
    "TelemetryConfig",
    "VantagePoint",
    "VisitFailure",
    "VisitOutcome",
    "campaign_report",
    "default_vantage_points",
    "derive_seed",
    "execute",
    "global_vantage_points",
    "measure_paired_visit",
    "measure_visit_outcome",
    "run_campaigns",
    "summary_report",
]
