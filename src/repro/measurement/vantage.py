"""Vantage points: the three CloudLab sites of the paper's Fig. 1."""

from __future__ import annotations

from dataclasses import dataclass

from repro.measurement.farm import ProbeNetProfile


@dataclass(frozen=True)
class VantagePoint:
    """One measurement site hosting several probes.

    The paper's vantage points are CloudLab clusters at the University
    of Utah, the University of Wisconsin-Madison, and Clemson
    University; each runs three probes (8 cores / 128 GB / Ubuntu
    20.04).  Here a vantage point contributes a slightly different
    network position (RTT scaling and last-mile delay).
    """

    name: str
    site: str
    rtt_scale: float = 1.0
    extra_delay_ms: float = 0.0
    n_probes: int = 3

    def net_profile(
        self,
        loss_rate: float = 0.0,
        rate_mbps: float | None = 50.0,
        jitter_ms: float = 0.0,
        bursty_loss: bool = False,
    ) -> ProbeNetProfile:
        """Build this site's probe profile, with optional netem overlay."""
        return ProbeNetProfile(
            rtt_scale=self.rtt_scale,
            extra_delay_ms=self.extra_delay_ms,
            loss_rate=loss_rate,
            rate_mbps=rate_mbps,
            jitter_ms=jitter_ms,
            bursty_loss=bursty_loss,
        )


def default_vantage_points() -> tuple[VantagePoint, ...]:
    """The paper's three sites, with mild positional diversity."""
    return (
        VantagePoint(name="utah", site="University of Utah", rtt_scale=1.0,
                     extra_delay_ms=0.0),
        VantagePoint(name="wisconsin", site="University of Wisconsin-Madison",
                     rtt_scale=1.1, extra_delay_ms=1.5),
        VantagePoint(name="clemson", site="Clemson University", rtt_scale=1.2,
                     extra_delay_ms=3.0),
    )


def global_vantage_points() -> tuple[VantagePoint, ...]:
    """Geographically diverse probes — the paper's future-work item 3.

    The US sites see CDN edges nearby; remote regions scale every RTT
    up (fewer local edges, longer trans-oceanic paths to origins).
    """
    return default_vantage_points() + (
        VantagePoint(name="frankfurt", site="Europe (Frankfurt)",
                     rtt_scale=1.4, extra_delay_ms=8.0),
        VantagePoint(name="singapore", site="Asia (Singapore)",
                     rtt_scale=1.9, extra_delay_ms=15.0),
        VantagePoint(name="saopaulo", site="South America (São Paulo)",
                     rtt_scale=2.3, extra_delay_ms=22.0),
    )
