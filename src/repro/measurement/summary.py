"""Constant-memory campaign folds: histograms + running aggregates.

The streaming executor (:mod:`repro.measurement.executor`) never holds
more than a bounded window of visits in memory; everything an analysis
needs from the long tail is folded *incrementally* into a
:class:`CampaignSummary` — per-mode PLT statistics, the PLT-reduction
distribution overall and per vantage / per probe, H3 win and fallback
rates, failure/degraded tallies and merged counters.

Two design rules make the fold a usable differential oracle:

* **Fixed grids.**  CDF sketches are :class:`FixedGridHistogram`\\ s
  whose bin edges never depend on the data, so merging two folds is an
  element-wise sum and the result is independent of how visits were
  sharded across workers.
* **Canonical fold order.**  Float accumulation is not associative, so
  the executor folds outcomes in canonical (config, vantage, probe,
  page) slot order regardless of completion order.
  :meth:`CampaignSummary.from_result` walks a materialized result in
  the same order, which is why the acceptance contract — streaming
  summary field-identical to the materialized fold, at any worker
  count, warm or cold store — can demand exact equality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.browser.browser import H2_ONLY, H3_ENABLED

#: Default grid for absolute PLTs: 0 .. 30 s in 50 ms bins.
PLT_GRID = (0.0, 50.0, 600)
#: Default grid for PLT reductions: −15 s .. +15 s in 50 ms bins.
REDUCTION_GRID = (-15_000.0, 50.0, 600)


@dataclass
class FixedGridHistogram:
    """A fixed-bin histogram with exact running moments.

    ``counts`` has ``nbins + 2`` slots: index 0 is the underflow bucket
    (values below ``lo``), index ``nbins + 1`` the overflow bucket.
    Because the grid is fixed at construction, merging is element-wise
    and quantile estimates are deterministic functions of the counts.
    """

    lo: float
    width: float
    nbins: int
    counts: list[int] = field(default_factory=list)
    n: int = 0
    total: float = 0.0
    sumsq: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (self.nbins + 2)

    def add(self, value: float) -> None:
        index = math.floor((value - self.lo) / self.width)
        if index < 0:
            slot = 0
        elif index >= self.nbins:
            # The grid covers the closed interval [lo, lo + nbins*width]:
            # a value exactly on the top edge belongs to the last bin,
            # not the overflow bucket (floor() alone would misfile it).
            if value <= self.lo + self.width * self.nbins:
                slot = self.nbins
            else:
                slot = self.nbins + 1
        else:
            slot = index + 1
        self.counts[slot] += 1
        self.n += 1
        self.total += value
        self.sumsq += value * value
        self.min = value if self.min is None else builtins_min(self.min, value)
        self.max = value if self.max is None else builtins_max(self.max, value)

    def merge(self, other: "FixedGridHistogram") -> None:
        if (other.lo, other.width, other.nbins) != (self.lo, self.width, self.nbins):
            raise ValueError("cannot merge histograms with different grids")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.n += other.n
        self.total += other.total
        self.sumsq += other.sumsq
        if other.min is not None:
            self.min = other.min if self.min is None else builtins_min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else builtins_max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    @property
    def stdev(self) -> float:
        """Sample standard deviation from the exact running moments."""
        if self.n < 2:
            return 0.0
        variance = (self.sumsq - self.total * self.total / self.n) / (self.n - 1)
        return math.sqrt(variance) if variance > 0.0 else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic quantile estimate (linear within the hit bin).

        Exact to within one bin width for in-range values; underflow
        and overflow buckets report the recorded ``min``/``max``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.n == 0:
            return 0.0
        if q == 0.0 and self.min is not None:
            return self.min
        if q == 1.0 and self.max is not None:
            return self.max
        target = q * (self.n - 1) + 1.0
        cumulative = 0
        for slot, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= target:
                if slot == 0:
                    return self.min if self.min is not None else self.lo
                if slot == self.nbins + 1:
                    return self.max if self.max is not None else self.lo
                left = self.lo + (slot - 1) * self.width
                fraction = (target - cumulative) / count
                return left + fraction * self.width
            cumulative += count
        return self.max if self.max is not None else self.lo

    def to_dict(self) -> dict:
        return {
            "lo": self.lo,
            "width": self.width,
            "nbins": self.nbins,
            "counts": list(self.counts),
            "n": self.n,
            "total": self.total,
            "sumsq": self.sumsq,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FixedGridHistogram":
        return cls(
            lo=raw["lo"],
            width=raw["width"],
            nbins=raw["nbins"],
            counts=[int(c) for c in raw["counts"]],
            n=int(raw["n"]),
            total=float(raw["total"]),
            sumsq=float(raw["sumsq"]),
            min=raw.get("min"),
            max=raw.get("max"),
        )


# math.floor + dataclass field named ``min`` shadow the builtins inside
# methods; keep explicit references.
builtins_min = min
builtins_max = max


def _plt_histogram() -> FixedGridHistogram:
    return FixedGridHistogram(*PLT_GRID)


def _reduction_histogram() -> FixedGridHistogram:
    return FixedGridHistogram(*REDUCTION_GRID)


@dataclass
class ModeFold:
    """Running aggregates for one protocol mode's recorded visits."""

    mode: str
    visits: int = 0
    pool_requests: int = 0
    har_entries: int = 0
    reused_requests: int = 0
    resumed_requests: int = 0
    bytes_transferred: int = 0
    plt: FixedGridHistogram = field(default_factory=_plt_histogram)

    def add_visit(self, visit) -> None:
        self.visits += 1
        self.pool_requests += visit.pool_stats.requests
        self.plt.add(visit.plt_ms)
        for entry in visit.entries:
            self.har_entries += 1
            if entry.used_reused_connection:
                self.reused_requests += 1
            if entry.resumed:
                self.resumed_requests += 1
            self.bytes_transferred += entry.response_bytes

    def merge(self, other: "ModeFold") -> None:
        self.visits += other.visits
        self.pool_requests += other.pool_requests
        self.har_entries += other.har_entries
        self.reused_requests += other.reused_requests
        self.resumed_requests += other.resumed_requests
        self.bytes_transferred += other.bytes_transferred
        self.plt.merge(other.plt)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "visits": self.visits,
            "poolRequests": self.pool_requests,
            "harEntries": self.har_entries,
            "reusedRequests": self.reused_requests,
            "resumedRequests": self.resumed_requests,
            "bytesTransferred": self.bytes_transferred,
            "plt": self.plt.to_dict(),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ModeFold":
        return cls(
            mode=raw["mode"],
            visits=int(raw["visits"]),
            pool_requests=int(raw["poolRequests"]),
            har_entries=int(raw["harEntries"]),
            reused_requests=int(raw["reusedRequests"]),
            resumed_requests=int(raw["resumedRequests"]),
            bytes_transferred=int(raw["bytesTransferred"]),
            plt=FixedGridHistogram.from_dict(raw["plt"]),
        )


SUMMARY_FORMAT = "repro-h3cdn-summary/1"


@dataclass
class CampaignSummary:
    """Everything the analyses need from a campaign, in O(1) memory.

    Built incrementally by the streaming executor (one
    :meth:`add_outcome` per visit, in canonical slot order) or in one
    pass from a materialized result (:meth:`from_result`) — the two
    must agree field for field; that equality is the streaming
    executor's differential oracle.
    """

    h2: ModeFold = field(default_factory=lambda: ModeFold(H2_ONLY))
    h3: ModeFold = field(default_factory=lambda: ModeFold(H3_ENABLED))
    #: PLT_H2 − PLT_H3 per paired visit (positive ⇒ H3 wins).
    reduction: FixedGridHistogram = field(default_factory=_reduction_histogram)
    by_vantage: dict[str, FixedGridHistogram] = field(default_factory=dict)
    by_probe: dict[str, FixedGridHistogram] = field(default_factory=dict)
    total_visits: int = 0
    ok_visits: int = 0
    degraded_visits: int = 0
    failed_visits: int = 0
    h3_wins: int = 0
    #: Fallback accounting over H3-mode HAR entries (the Fig. fallback
    #: definition): entries to an H3-capable host that were not served
    #: over H3.
    fallback_eligible: int = 0
    fallback_fell_back: int = 0
    #: Merged counter registry (``collect_counters`` runs only), as the
    #: registry's dict form; merged in canonical visit order.
    counters: dict | None = None
    #: Distinct page URLs folded so far.  The one O(pages) component —
    #: a few bytes per *page* (not per visit), kept for parity with
    #: ``CampaignResult.pages_measured``; excluded from equality so two
    #: folds compare on their aggregates.
    page_urls: set[str] = field(default_factory=set, compare=False)

    # -- folding -------------------------------------------------------

    def add_outcome(self, outcome, probe_name: str, universe=None) -> None:
        """Fold one :class:`~repro.measurement.outcome.VisitOutcome`.

        ``probe_name`` is the ``"<vantage>-<probe_index>"`` name the
        probes carry; ``universe`` (when given) enables the fallback
        fold, which needs host capability lookups.
        """
        self.total_visits += 1
        if outcome.status == "failed" or outcome.h2 is None or outcome.h3 is None:
            self.failed_visits += 1
            return
        if outcome.status == "degraded":
            self.degraded_visits += 1
        else:
            self.ok_visits += 1
        self._fold_pair(outcome.h2, outcome.h3, probe_name, universe)

    def _fold_pair(self, h2, h3, probe_name: str, universe) -> None:
        self.h2.add_visit(h2)
        self.h3.add_visit(h3)
        self.page_urls.add(h2.page_url)
        reduction = h2.plt_ms - h3.plt_ms
        self.reduction.add(reduction)
        if reduction > 0:
            self.h3_wins += 1
        vantage = probe_name.rsplit("-", 1)[0]
        for bucket, name in ((self.by_vantage, vantage), (self.by_probe, probe_name)):
            histogram = bucket.get(name)
            if histogram is None:
                histogram = bucket[name] = _reduction_histogram()
            histogram.add(reduction)
        if universe is not None:
            hosts = universe.hosts
            for entry in h3.entries:
                spec = hosts.get(entry.host)
                if spec is None or not spec.supports_h3:
                    continue
                self.fallback_eligible += 1
                if entry.protocol != "h3":
                    self.fallback_fell_back += 1
        for visit in (h2, h3):
            if visit.counters:
                if self.counters is None:
                    from repro.obs.counters import CounterRegistry

                    self.counters = CounterRegistry().to_dict()
                self._merge_counters(visit.counters)

    def _merge_counters(self, raw: dict) -> None:
        from repro.obs.counters import CounterRegistry

        registry = CounterRegistry()
        registry.merge_dict(self.counters)
        registry.merge_dict(raw)
        self.counters = registry.to_dict()

    def merge(self, other: "CampaignSummary") -> None:
        """Element-wise merge of two folds (for sharded campaigns)."""
        self.h2.merge(other.h2)
        self.h3.merge(other.h3)
        self.reduction.merge(other.reduction)
        for bucket, other_bucket in (
            (self.by_vantage, other.by_vantage),
            (self.by_probe, other.by_probe),
        ):
            for name, histogram in other_bucket.items():
                mine = bucket.get(name)
                if mine is None:
                    bucket[name] = FixedGridHistogram.from_dict(histogram.to_dict())
                else:
                    mine.merge(histogram)
        self.total_visits += other.total_visits
        self.ok_visits += other.ok_visits
        self.degraded_visits += other.degraded_visits
        self.failed_visits += other.failed_visits
        self.h3_wins += other.h3_wins
        self.fallback_eligible += other.fallback_eligible
        self.fallback_fell_back += other.fallback_fell_back
        self.page_urls |= other.page_urls
        if other.counters is not None:
            if self.counters is None:
                from repro.obs.counters import CounterRegistry

                self.counters = CounterRegistry().to_dict()
            self._merge_counters(other.counters)

    # -- derived rates -------------------------------------------------

    @property
    def visits_recorded(self) -> int:
        """Paired visits that produced measurements (ok + degraded)."""
        return self.ok_visits + self.degraded_visits

    @property
    def pages_measured(self) -> int:
        return len(self.page_urls)

    @property
    def h3_win_rate(self) -> float:
        recorded = self.visits_recorded
        return self.h3_wins / recorded if recorded else 0.0

    @property
    def fallback_rate(self) -> float:
        if not self.fallback_eligible:
            return 0.0
        return self.fallback_fell_back / self.fallback_eligible

    @property
    def mean_reduction_ms(self) -> float:
        return self.reduction.mean

    # -- materialized oracle -------------------------------------------

    @classmethod
    def from_result(cls, result, universe=None) -> "CampaignSummary":
        """Fold a materialized :class:`CampaignResult`, in visit order.

        ``paired_visits`` is already in canonical (vantage, probe,
        page) slot order for any worker count, so this fold reproduces
        the streaming executor's summary exactly.  Failures carry no
        float state, so folding them after the visits is order-safe.
        """
        summary = cls()
        fold_universe = universe if universe is not None else result.universe
        for paired in result.paired_visits:
            status = (
                "degraded"
                if paired.h2.status != "ok" or paired.h3.status != "ok"
                else "ok"
            )
            summary.total_visits += 1
            if status == "degraded":
                summary.degraded_visits += 1
            else:
                summary.ok_visits += 1
            summary._fold_pair(
                paired.h2, paired.h3, paired.probe_name, fold_universe
            )
        summary.total_visits += len(result.failures)
        summary.failed_visits += len(result.failures)
        return summary

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": SUMMARY_FORMAT,
            "h2": self.h2.to_dict(),
            "h3": self.h3.to_dict(),
            "reduction": self.reduction.to_dict(),
            "byVantage": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.by_vantage.items())
            },
            "byProbe": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.by_probe.items())
            },
            "totalVisits": self.total_visits,
            "okVisits": self.ok_visits,
            "degradedVisits": self.degraded_visits,
            "failedVisits": self.failed_visits,
            "h3Wins": self.h3_wins,
            "fallbackEligible": self.fallback_eligible,
            "fallbackFellBack": self.fallback_fell_back,
            "counters": self.counters,
            "pagesMeasured": self.pages_measured,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CampaignSummary":
        if raw.get("format") != SUMMARY_FORMAT:
            raise ValueError(
                f"unsupported summary format {raw.get('format')!r}"
            )
        return cls(
            h2=ModeFold.from_dict(raw["h2"]),
            h3=ModeFold.from_dict(raw["h3"]),
            reduction=FixedGridHistogram.from_dict(raw["reduction"]),
            by_vantage={
                name: FixedGridHistogram.from_dict(h)
                for name, h in raw["byVantage"].items()
            },
            by_probe={
                name: FixedGridHistogram.from_dict(h)
                for name, h in raw["byProbe"].items()
            },
            total_visits=int(raw["totalVisits"]),
            ok_visits=int(raw["okVisits"]),
            degraded_visits=int(raw["degradedVisits"]),
            failed_visits=int(raw["failedVisits"]),
            h3_wins=int(raw["h3Wins"]),
            fallback_eligible=int(raw["fallbackEligible"]),
            fallback_fell_back=int(raw["fallbackFellBack"]),
            counters=raw.get("counters"),
        )
