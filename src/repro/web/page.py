"""Webpages and websites, with the composition accessors the paper's
Section V characteristic analyses read."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.web.resource import Resource, ResourceType


@dataclass
class Webpage:
    """One landing page: an HTML document plus its subresources."""

    url: str
    origin_host: str
    html: Resource
    resources: tuple[Resource, ...] = ()
    rank: int = 0

    def __post_init__(self) -> None:
        if self.html.rtype is not ResourceType.HTML:
            raise ValueError(f"{self.url}: html resource must have type HTML")

    # -- composition accessors (paper Section V) -----------------------

    @property
    def all_resources(self) -> tuple[Resource, ...]:
        """HTML first, then subresources (request order of discovery)."""
        return (self.html, *self.resources)

    @property
    def total_requests(self) -> int:
        return 1 + len(self.resources)

    @property
    def cdn_resources(self) -> tuple[Resource, ...]:
        return tuple(r for r in self.resources if r.is_cdn)

    @property
    def cdn_fraction(self) -> float:
        """Fraction of this page's requests served from CDNs (Fig. 3)."""
        return len(self.cdn_resources) / self.total_requests

    @property
    def providers(self) -> frozenset[str]:
        """CDN providers appearing on this page (Fig. 4)."""
        return frozenset(r.provider_name for r in self.cdn_resources)

    @property
    def provider_count(self) -> int:
        return len(self.providers)

    def resources_by_provider(self) -> dict[str, int]:
        """Provider → number of CDN resources on this page (Fig. 5)."""
        return dict(Counter(r.provider_name for r in self.cdn_resources))

    def hosts(self) -> frozenset[str]:
        """Every hostname this page touches."""
        return frozenset(r.host for r in self.all_resources)

    def cdn_domains(self) -> frozenset[str]:
        """CDN hostnames used (the Table III case-study vector basis)."""
        return frozenset(r.host for r in self.cdn_resources)

    @property
    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.all_resources)

    def __repr__(self) -> str:
        return (
            f"<Webpage {self.url} reqs={self.total_requests} "
            f"cdn={self.cdn_fraction:.0%} providers={self.provider_count}>"
        )


@dataclass
class Website:
    """One site on the top list; we measure its landing page only
    (paper Section III-A)."""

    domain: str
    rank: int
    landing_page: Webpage = field(repr=False)

    def __repr__(self) -> str:
        return f"<Website #{self.rank} {self.domain}>"
