"""Universe serialization: save/load a generated cohort as JSON.

A :class:`~repro.web.topsites.WebUniverse` is normally regenerated from
``(config, seed)``; serialization exists for interoperability — export
a workload for external tools, archive the exact cohort a result was
produced on, or hand-craft universes for targeted experiments.
"""

from __future__ import annotations

import json
from typing import Any

from repro.transport.tcp import TlsVersion
from repro.web.hosts import HostSpec
from repro.web.page import Webpage, Website
from repro.web.resource import Resource, ResourceType
from repro.web.topsites import GeneratorConfig, WebUniverse


def _resource_to_dict(resource: Resource) -> dict[str, Any]:
    return {
        "url": resource.url,
        "host": resource.host,
        "type": resource.rtype.value,
        "size": resource.size_bytes,
        "provider": resource.provider_name,
        "wave": resource.wave,
        "popular": resource.popular,
    }


def _resource_from_dict(raw: dict[str, Any]) -> Resource:
    return Resource(
        url=raw["url"],
        host=raw["host"],
        rtype=ResourceType(raw["type"]),
        size_bytes=raw["size"],
        provider_name=raw.get("provider"),
        wave=raw.get("wave", 0),
        popular=raw.get("popular", True),
    )


def _host_to_dict(spec: HostSpec) -> dict[str, Any]:
    return {
        "hostname": spec.hostname,
        "kind": spec.kind,
        "provider": spec.provider_name,
        "h3": spec.supports_h3,
        "h2": spec.supports_h2,
        "rtt_ms": spec.base_rtt_ms,
        "think_ms": spec.base_think_ms,
        "origin_fetch_ms": spec.origin_fetch_ms,
        "h3_overhead_ms": spec.h3_think_overhead_ms,
        "tls": spec.tls_version.value,
    }


def _host_from_dict(raw: dict[str, Any]) -> HostSpec:
    return HostSpec(
        hostname=raw["hostname"],
        kind=raw["kind"],
        provider_name=raw.get("provider"),
        supports_h3=raw["h3"],
        supports_h2=raw["h2"],
        base_rtt_ms=raw["rtt_ms"],
        base_think_ms=raw["think_ms"],
        origin_fetch_ms=raw.get("origin_fetch_ms", 60.0),
        h3_think_overhead_ms=raw.get("h3_overhead_ms", 4.0),
        tls_version=TlsVersion(raw.get("tls", "tls1.3")),
    )


def universe_to_dict(universe: WebUniverse) -> dict[str, Any]:
    """Serialize a universe (config is recorded as its field dict)."""
    return {
        "format": "repro-h3cdn-universe/1",
        "seed": universe.seed,
        "config": {
            key: value
            for key, value in universe.config.__dict__.items()
            if isinstance(value, (int, float, str, bool))
        },
        "hosts": [_host_to_dict(spec) for spec in universe.hosts.values()],
        "websites": [
            {
                "domain": site.domain,
                "rank": site.rank,
                "url": site.landing_page.url,
                "origin_host": site.landing_page.origin_host,
                "html": _resource_to_dict(site.landing_page.html),
                "resources": [
                    _resource_to_dict(r) for r in site.landing_page.resources
                ],
            }
            for site in universe.websites
        ],
    }


def universe_from_dict(document: dict[str, Any]) -> WebUniverse:
    """Reconstruct a universe saved by :func:`universe_to_dict`.

    The generator config is restored only for its scalar fields; the
    cohort itself is taken verbatim from the document, so analyses are
    unaffected by any config drift.
    """
    if document.get("format") != "repro-h3cdn-universe/1":
        raise ValueError(f"unrecognized universe format: {document.get('format')!r}")
    config_kwargs = {
        key: value
        for key, value in document.get("config", {}).items()
        if key in GeneratorConfig.__dataclass_fields__
    }
    hosts = {
        raw["hostname"]: _host_from_dict(raw) for raw in document["hosts"]
    }
    websites = []
    for raw in document["websites"]:
        page = Webpage(
            url=raw["url"],
            origin_host=raw["origin_host"],
            html=_resource_from_dict(raw["html"]),
            resources=tuple(_resource_from_dict(r) for r in raw["resources"]),
            rank=raw["rank"],
        )
        websites.append(Website(domain=raw["domain"], rank=raw["rank"], landing_page=page))
    return WebUniverse(
        websites=tuple(websites),
        hosts=hosts,
        config=GeneratorConfig(**config_kwargs),
        seed=document.get("seed", -1),
    )


def page_visit_to_dict(visit: Any) -> dict[str, Any]:
    """Serialize a :class:`~repro.browser.browser.PageVisit` to a dict.

    Convenience alias for ``visit.to_dict()`` so serialization consumers
    (the parallel campaign runner, archival tools) can import every
    format from one module.
    """
    return visit.to_dict()


def page_visit_from_dict(document: dict[str, Any]):
    """Inverse of :func:`page_visit_to_dict`."""
    from repro.browser.browser import PageVisit

    return PageVisit.from_dict(document)


def save_universe(universe: WebUniverse, path: str) -> None:
    """Write a universe to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(universe_to_dict(universe), handle)


def load_universe(path: str) -> WebUniverse:
    """Read a universe written by :func:`save_universe`."""
    with open(path) as handle:
        return universe_from_dict(json.load(handle))
