"""Web resources: the atoms of a page load."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ResourceType(enum.Enum):
    """MIME-level resource categories the paper's PLT definition covers
    ('HTML, images, fonts, CSS... and any sub-resources')."""

    HTML = "html"
    CSS = "css"
    JS = "js"
    IMAGE = "image"
    FONT = "font"
    MEDIA = "media"
    XHR = "xhr"


@dataclass(frozen=True)
class Resource:
    """One fetchable object on a webpage.

    ``provider_name`` is ``None`` for non-CDN resources.  ``wave``
    models discovery depth: wave 0 resources are referenced directly by
    the HTML, wave 1 resources are discovered only after a wave 0
    CSS/JS file has loaded (fonts from stylesheets, XHRs from scripts).
    ``popular`` marks objects that long-lived edge caches already hold
    (the paper notes its pages are popular enough that first and second
    visits do not differ).
    """

    url: str
    host: str
    rtype: ResourceType
    size_bytes: int
    provider_name: str | None = None
    wave: int = 0
    popular: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"{self.url}: size_bytes must be positive")
        if self.wave not in (0, 1):
            raise ValueError(f"{self.url}: wave must be 0 or 1")

    @property
    def is_cdn(self) -> bool:
        """Whether this resource is served from a CDN edge."""
        return self.provider_name is not None

    @property
    def request_bytes(self) -> int:
        """Approximate size of the HTTP request for this resource."""
        return 400 + len(self.url)

    @property
    def compressible(self) -> bool:
        """Whether edges can transcode this resource (text-like types).

        Images and media ship pre-compressed; recompressing them buys
        nothing, so compression campaigns leave them identity-encoded.
        """
        from repro.cdn.compression import is_compressible

        return is_compressible(self.rtype.value)

    @property
    def stored_encoding(self) -> str:
        """The content encoding origins keep this resource in."""
        from repro.cdn.compression import origin_encoding

        return origin_encoding(self.rtype.value)

    def encoded_bytes(self, encoding: str) -> int:
        """Wire size of this resource under ``encoding``.

        ``size_bytes`` stays the nominal (identity) size everywhere —
        page generation, store keys, legacy campaigns — and the
        compression model derives the on-the-wire size from it.
        """
        from repro.cdn.compression import encoded_size

        if not self.compressible:
            return self.size_bytes
        return encoded_size(self.size_bytes, encoding)
