"""Host specifications: the generator's declarative server inventory.

A :class:`HostSpec` describes one hostname's capabilities and costs.
Specs are *universe-global*: the same shared CDN hostname (say,
``fonts.gstatic.com``) has identical H3 support everywhere it appears,
which is what makes cross-page session resumption (Fig. 8) meaningful.
The measurement layer turns specs into live :class:`~repro.cdn.edge.
EdgeServer`/:class:`~repro.cdn.origin.OriginServer` instances per probe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdn.edge import EdgeServer
from repro.cdn.origin import OriginServer
from repro.cdn.provider import get_provider
from repro.transport.tcp import TlsVersion


@dataclass(frozen=True)
class HostSpec:
    """Declarative description of one server (edge or origin)."""

    hostname: str
    kind: str  # "edge" or "origin"
    provider_name: str | None
    supports_h3: bool
    supports_h2: bool
    base_rtt_ms: float
    base_think_ms: float
    origin_fetch_ms: float = 60.0
    h3_think_overhead_ms: float = 4.0
    tls_version: TlsVersion = TlsVersion.TLS13

    def __post_init__(self) -> None:
        if self.kind not in ("edge", "origin"):
            raise ValueError(f"{self.hostname}: kind must be 'edge' or 'origin'")
        if self.kind == "edge" and self.provider_name is None:
            raise ValueError(f"{self.hostname}: an edge host needs a provider")
        if self.kind == "origin" and self.provider_name is not None:
            raise ValueError(f"{self.hostname}: origin hosts have no provider")
        if not self.supports_h2 and self.supports_h3:
            raise ValueError(f"{self.hostname}: H3-only host is not reachable by H2 probes")

    @property
    def h1_only(self) -> bool:
        """True for the Table II 'Others' bucket (HTTP/1.x-only servers)."""
        return not self.supports_h2 and not self.supports_h3

    def instantiate(
        self, hierarchy=None, compression=None
    ) -> EdgeServer | OriginServer:
        """Create a live server (fresh cache) from this spec.

        ``hierarchy``/``compression`` are campaign-level edge configs
        (origins ignore them — they have no cache and serve identity).
        """
        if self.kind == "edge":
            return EdgeServer(
                hostname=self.hostname,
                provider=get_provider(self.provider_name),
                base_rtt_ms=self.base_rtt_ms,
                base_think_ms=self.base_think_ms,
                origin_fetch_ms=self.origin_fetch_ms,
                h3_think_overhead_ms=self.h3_think_overhead_ms,
                supports_h3=self.supports_h3,
                tls_version=self.tls_version,
                hierarchy=hierarchy,
                compression=compression,
            )
        return OriginServer(
            hostname=self.hostname,
            base_rtt_ms=self.base_rtt_ms,
            base_think_ms=self.base_think_ms,
            h3_think_overhead_ms=self.h3_think_overhead_ms,
            supports_h3=self.supports_h3,
            supports_h2=self.supports_h2,
            tls_version=self.tls_version,
        )
