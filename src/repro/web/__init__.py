"""The synthetic web: resources, pages, websites, and the top-list generator.

The paper measures 325 landing pages from the Alexa Top 500.  With no
Internet available, this package generates a statistically calibrated
stand-in: a universe of websites whose *distributional* properties match
the marginals the paper reports (CDN share of requests, provider market
shares and H3 adoption, providers-per-page, resource counts and sizes),
so that every downstream analysis exercises the same regimes.
"""

from repro.web.hosts import HostSpec
from repro.web.page import Webpage, Website
from repro.web.resource import Resource, ResourceType
from repro.web.topsites import (
    GeneratorConfig,
    LazyWebUniverse,
    TopSitesGenerator,
    WebUniverse,
    cached_universe,
    lazy_universe,
)

__all__ = [
    "GeneratorConfig",
    "HostSpec",
    "LazyWebUniverse",
    "Resource",
    "ResourceType",
    "TopSitesGenerator",
    "WebUniverse",
    "Webpage",
    "Website",
    "cached_universe",
    "lazy_universe",
]
