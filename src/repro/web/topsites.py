"""Synthetic Alexa-style top-site generator, calibrated to the paper.

The generator produces a :class:`WebUniverse`: ~325 websites plus a
global host inventory.  Calibration targets (paper Section IV/V):

* CDN resources ≈ 67 % of all requests (Table II).
* H3-enabled CDN requests ≈ 38 % of CDN requests, dominated by Google
  (~50 % of H3 CDN requests) and Cloudflare (~45 %) — Fig. 2.
* 75 % of pages have > 50 % CDN resources — Fig. 3.
* ~95 % of pages use ≥ 2 CDN providers — Fig. 4(b).
* ~50 % of pages using Cloudflare/Google host > 10 of that provider's
  resources — Fig. 5.
* 75 % of CDN objects below 20 KB (Section VI-E, citing [39]).
* Non-CDN origins: ≈ 20.7 % H3-capable, ≈ 18.7 % HTTP/1.x-only
  (Table II's non-CDN H3 and "Others" rows).

Every draw comes from one seeded :class:`random.Random`, so a universe
is exactly reproducible from ``(config, seed)``.
"""

from __future__ import annotations

import hashlib
import math
import random
import re
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.cdn.provider import CdnProvider, default_providers
from repro.transport.tcp import TlsVersion
from repro.web.hosts import HostSpec
from repro.web.page import Webpage, Website
from repro.web.resource import Resource, ResourceType


@dataclass(frozen=True)
class GeneratorConfig:
    """All calibration knobs in one place (defaults reproduce the paper)."""

    n_sites: int = 325
    # Requests per page: lognormal, clamped. 36 057 requests over 325
    # pages in the paper -> mean ~111.
    resources_per_page_median: float = 100.0
    resources_per_page_sigma: float = 0.45
    min_resources: int = 15
    max_resources: int = 320
    # Per-page CDN fraction: Beta(a, b) with mean ~0.67.
    cdn_fraction_alpha: float = 3.5
    cdn_fraction_beta: float = 1.8
    # Number of distinct CDN providers per page (Fig 4b: 94.8% >= 2).
    providers_per_page_weights: tuple[tuple[int, float], ...] = (
        (1, 0.03), (2, 0.17), (3, 0.25), (4, 0.24), (5, 0.18), (6, 0.13),
    )
    # Subresource sizes: lognormal (75% under 20 KB).
    size_median_bytes: float = 8_000.0
    size_sigma: float = 1.1
    min_size_bytes: int = 200
    max_size_bytes: int = 2_000_000
    # HTML document size.
    html_median_bytes: float = 30_000.0
    html_sigma: float = 0.6
    # Resource type mix (weights, normalized internally).
    type_weights: tuple[tuple[ResourceType, float], ...] = (
        (ResourceType.IMAGE, 0.45),
        (ResourceType.JS, 0.25),
        (ResourceType.CSS, 0.10),
        (ResourceType.XHR, 0.10),
        (ResourceType.FONT, 0.05),
        (ResourceType.MEDIA, 0.05),
    )
    #: Probability that a page's provider count follows its size
    #: quantile instead of an independent draw.  Bigger pages use more
    #: providers — the size-mediated correlation behind the paper's
    #: Fig. 8 trends; the uniform mixture keeps the Fig. 4(b) marginal
    #: distribution intact.
    provider_count_size_coupling: float = 0.7
    #: Fraction of early-provider/non-CDN subresources discovered only
    #: after CSS/JS load.
    wave1_fraction: float = 0.15
    #: Probability that a secondary CDN provider on a page is "late" —
    #: pulled in by scripts (ads, analytics, fonts), so its resources
    #: are wave-1 and its connection handshake lands on the critical
    #: path.  The page's main provider is always early.
    late_provider_prob: float = 0.55
    #: Wave-1 share of a late provider's resources.
    late_provider_wave1_frac: float = 0.85
    #: Traffic-weight multiplier for H3-capable edge hostnames within a
    #: provider: CDNs roll H3 out on their highest-traffic properties
    #: first, so H3-capable hosts carry disproportionate bytes.
    h3_host_traffic_bias: float = 2.5
    #: Fraction of objects already cached at edges (popular content).
    popular_fraction: float = 0.9
    #: Chance a page adds a customer-specific CDN hostname per provider.
    custom_cdn_host_prob: float = 0.35
    #: Shared hostnames a page uses per provider: 1..max.
    max_shared_hosts_per_provider: int = 3
    #: Extra non-CDN hostnames besides the site origin (APIs, static
    #: subdomains, third-party trackers).  Spreading non-CDN requests
    #: thin keeps any single origin chain off the critical path, as on
    #: real top sites.
    max_extra_origin_hosts: int = 4
    # Non-CDN server protocol support (Table II calibration).
    origin_h1_only_prob: float = 0.187
    origin_h3_prob: float = 0.207
    # Network distances (one-way RTT halves are derived from these).
    edge_rtt_range_ms: tuple[float, float] = (12.0, 35.0)
    origin_rtt_range_ms: tuple[float, float] = (20.0, 60.0)
    # Server processing costs.
    edge_think_range_ms: tuple[float, float] = (5.0, 12.0)
    origin_think_range_ms: tuple[float, float] = (15.0, 30.0)
    origin_fetch_range_ms: tuple[float, float] = (40.0, 90.0)
    h3_overhead_range_ms: tuple[float, float] = (2.5, 6.0)
    #: Fraction of servers still on TLS 1.2 (slower H2 handshakes).
    tls12_fraction: float = 0.25


#: Websites the paper names, with their known characteristics: YouTube
#: and WordPress "fully support access using H3"; Spotify and Zoom
#: share Amazon, Cloudflare and Google.
_NAMED_SITES: tuple[tuple[str, dict], ...] = (
    ("youtube.com", {"providers": ("google",), "origin_h3": True, "all_h3": True}),
    ("wordpress.com", {"providers": ("cloudflare", "google"), "origin_h3": True,
                       "all_h3": True}),
    ("spotify.com", {"providers": ("amazon", "cloudflare", "google")}),
    ("zoom.us", {"providers": ("amazon", "cloudflare", "google")}),
)

_DOMAIN_WORDS = (
    "news", "shop", "video", "cloud", "play", "social", "travel", "bank",
    "mail", "search", "sport", "photo", "music", "game", "forum", "wiki",
    "blog", "stream", "market", "code",
)


@dataclass
class WebUniverse:
    """A generated cohort of websites plus the global host inventory."""

    websites: tuple[Website, ...]
    hosts: dict[str, HostSpec]
    config: GeneratorConfig
    seed: int

    @property
    def pages(self) -> tuple[Webpage, ...]:
        return tuple(site.landing_page for site in self.websites)

    @property
    def page_count(self) -> int:
        return len(self.websites)

    def page_at(self, index: int) -> Webpage:
        return self.websites[index].landing_page

    def iter_pages(self, n: int | None = None):
        """Yield the first ``n`` pages (all of them when ``n`` is None)."""
        count = self.page_count if n is None else min(n, self.page_count)
        for index in range(count):
            yield self.page_at(index)

    def host(self, hostname: str) -> HostSpec:
        return self.hosts[hostname]

    def h3_enabled_cdn_resources(self, page: Webpage) -> int:
        """CDN resources on ``page`` whose host speaks H3 (Fig. 6 grouping)."""
        return sum(
            1 for r in page.cdn_resources if self.hosts[r.host].supports_h3
        )

    def summary(self) -> dict[str, float]:
        """Cohort-level marginals (used by calibration tests and docs)."""
        pages = self.pages
        total = sum(p.total_requests for p in pages)
        cdn = sum(len(p.cdn_resources) for p in pages)
        cdn_h3 = sum(self.h3_enabled_cdn_resources(p) for p in pages)
        noncdn_h3 = sum(
            1
            for p in pages
            for r in p.all_resources
            if not r.is_cdn and self.hosts[r.host].supports_h3
        )
        h1_only = sum(
            1
            for p in pages
            for r in p.all_resources
            if not r.is_cdn and self.hosts[r.host].h1_only
        )
        return {
            "sites": len(pages),
            "total_requests": total,
            "cdn_request_fraction": cdn / total,
            "cdn_h3_fraction_of_cdn": cdn_h3 / cdn if cdn else 0.0,
            "h3_fraction_of_all": (cdn_h3 + noncdn_h3) / total,
            "h1_only_fraction_of_all": h1_only / total,
            "pages_with_2plus_providers": (
                sum(1 for p in pages if p.provider_count >= 2) / len(pages)
            ),
            "pages_majority_cdn": (
                sum(1 for p in pages if p.cdn_fraction > 0.5) / len(pages)
            ),
        }


#: Memoized universes keyed by ``(config, seed)``.  Generation is pure —
#: the same key always yields the same universe — and benchmarks/studies
#: rebuild identical cohorts constantly, so the memo turns repeats into
#: dict lookups.  Callers must treat cached universes as immutable.
_UNIVERSE_MEMO: dict[tuple[GeneratorConfig, int], WebUniverse] = {}


def cached_universe(
    config: GeneratorConfig | None = None, seed: int = 0
) -> WebUniverse:
    """Return the universe for ``(config, seed)``, generating it at most once.

    Only default-provider universes are cached; pass a custom provider
    set directly to :class:`TopSitesGenerator` when you need one.
    """
    key = (config or GeneratorConfig(), seed)
    universe = _UNIVERSE_MEMO.get(key)
    if universe is None:
        universe = TopSitesGenerator(key[0]).generate(seed)
        _UNIVERSE_MEMO[key] = universe
    return universe


class TopSitesGenerator:
    """Generates a :class:`WebUniverse` from a config and a seed."""

    def __init__(
        self,
        config: GeneratorConfig | None = None,
        providers: tuple[CdnProvider, ...] | None = None,
    ) -> None:
        self.config = config or GeneratorConfig()
        self.providers = providers if providers is not None else default_providers()
        self._provider_by_name = {p.name: p for p in self.providers}
        self._shared_h3: dict[str, bool] = {}
        self._provider_rtt: dict[str, float] = {}

    # -- public API ----------------------------------------------------

    def generate(self, seed: int = 0) -> WebUniverse:
        """Build the full universe deterministically from ``seed``."""
        rng = random.Random(seed)
        self._shared_h3 = self._assign_shared_host_h3(rng)
        # One edge RTT per provider: a provider's hostnames resolve to
        # the same nearby POP (which is also why browsers can coalesce
        # their connections onto one socket), so they share the path
        # latency.  RTTs are evenly spaced across the edge range and
        # randomly assigned, so every universe sees the full diversity
        # (a tiny independent sample could land all giants nearby).
        lo, hi = self.config.edge_rtt_range_ms
        n = len(self.providers)
        spread = [lo + (hi - lo) * i / max(1, n - 1) for i in range(n)]
        rng.shuffle(spread)
        self._provider_rtt = {
            provider.name: rtt for provider, rtt in zip(self.providers, spread)
        }
        hosts: dict[str, HostSpec] = {}
        websites = []
        for rank in range(1, self.config.n_sites + 1):
            domain, overrides = self._site_identity(rank, rng)
            page = self._generate_page(domain, rank, overrides, hosts, rng)
            websites.append(Website(domain=domain, rank=rank, landing_page=page))
        return WebUniverse(tuple(websites), hosts, self.config, seed)

    def _assign_shared_host_h3(self, rng: random.Random) -> dict[str, bool]:
        """Stratified H3 assignment for shared edge hostnames.

        Drawing H3 support independently per host has far too much
        variance with ~10 shared hosts per provider (a couple of lucky
        draws would swing a provider's request-level H3 share by tens of
        points).  Instead, each provider gets ``round(n * adoption)``
        H3-enabled shared hosts — randomly chosen, probabilistically
        rounded — so the realized request-level adoption tracks the
        calibrated provider parameter.
        """
        assignment: dict[str, bool] = {}
        for provider in self.providers:
            domains = list(provider.shared_domains)
            rng.shuffle(domains)
            exact = len(domains) * provider.h3_adoption
            n_h3 = int(exact) + (1 if rng.random() < exact - int(exact) else 0)
            for i, domain in enumerate(domains):
                assignment[domain] = i < n_h3
        return assignment

    # -- site-level pieces ----------------------------------------------

    def _site_identity(self, rank: int, rng: random.Random) -> tuple[str, dict]:
        if rank <= len(_NAMED_SITES):
            domain, overrides = _NAMED_SITES[rank - 1]
            return domain, dict(overrides)
        word = _DOMAIN_WORDS[(rank - 1) % len(_DOMAIN_WORDS)]
        return f"{word}{rank}.example.com", {}

    def _generate_page(
        self,
        domain: str,
        rank: int,
        overrides: dict,
        hosts: dict[str, HostSpec],
        rng: random.Random,
    ) -> Webpage:
        cfg = self.config
        n_total = self._draw_resource_count(rng)
        cdn_fraction = rng.betavariate(cfg.cdn_fraction_alpha, cfg.cdn_fraction_beta)
        n_cdn = round((n_total - 1) * cdn_fraction)
        n_noncdn = (n_total - 1) - n_cdn

        page_providers = self._choose_providers(overrides, n_cdn, n_total, rng)
        allocation = self._allocate_resources(page_providers, n_cdn, rng)

        origin_host = f"www.{domain}"
        self._ensure_origin_host(
            origin_host, hosts, rng,
            force_h3=overrides.get("origin_h3", False),
        )

        # The page's main provider (largest allocation) is referenced by
        # the HTML itself; secondary providers may be "late" — pulled in
        # by scripts, so their resources are mostly wave 1 and their
        # connection setup sits on the critical path.
        main_provider = (
            max(allocation, key=allocation.get) if allocation else None
        )
        resources: list[Resource] = []
        counter = 0
        for provider_name, count in allocation.items():
            provider = self._provider_by_name[provider_name]
            page_hosts = self._choose_provider_hosts(
                provider, domain, hosts, rng, force_h3=overrides.get("all_h3", False)
            )
            late = (
                provider_name != main_provider
                and rng.random() < cfg.late_provider_prob
            )
            wave1_prob = cfg.late_provider_wave1_frac if late else cfg.wave1_fraction
            host_weights = [
                cfg.h3_host_traffic_bias if hosts[h].supports_h3 else 1.0
                for h in page_hosts
            ]
            for _ in range(count):
                counter += 1
                host = rng.choices(page_hosts, weights=host_weights, k=1)[0]
                resources.append(
                    self._make_resource(host, provider_name, counter, rng, wave1_prob)
                )
        noncdn_hosts = self._choose_noncdn_hosts(domain, origin_host, hosts, rng)
        for _ in range(n_noncdn):
            counter += 1
            host = rng.choice(noncdn_hosts)
            resources.append(
                self._make_resource(host, None, counter, rng, cfg.wave1_fraction)
            )

        rng.shuffle(resources)
        html = Resource(
            url=f"https://{origin_host}/",
            host=origin_host,
            rtype=ResourceType.HTML,
            size_bytes=self._draw_size(rng, cfg.html_median_bytes, cfg.html_sigma),
            provider_name=None,
            wave=0,
            popular=True,
        )
        return Webpage(
            url=f"https://{origin_host}/",
            origin_host=origin_host,
            html=html,
            resources=tuple(resources),
            rank=rank,
        )

    # -- draws -----------------------------------------------------------

    def _draw_resource_count(self, rng: random.Random) -> int:
        cfg = self.config
        raw = rng.lognormvariate(
            math.log(cfg.resources_per_page_median), cfg.resources_per_page_sigma
        )
        return max(cfg.min_resources, min(cfg.max_resources, round(raw)))

    def _draw_size(
        self, rng: random.Random, median: float | None = None, sigma: float | None = None
    ) -> int:
        cfg = self.config
        median = cfg.size_median_bytes if median is None else median
        sigma = cfg.size_sigma if sigma is None else sigma
        raw = rng.lognormvariate(math.log(median), sigma)
        return max(cfg.min_size_bytes, min(cfg.max_size_bytes, round(raw)))

    def _draw_type(self, rng: random.Random) -> ResourceType:
        types, weights = zip(*self.config.type_weights)
        return rng.choices(types, weights=weights, k=1)[0]

    def _size_quantile(self, n_total: int) -> float:
        """Where ``n_total`` sits in the page-size distribution [0, 1]."""
        cfg = self.config
        z = (
            math.log(n_total) - math.log(cfg.resources_per_page_median)
        ) / cfg.resources_per_page_sigma
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

    def _provider_count(self, n_total: int, rng: random.Random) -> int:
        """Draw the number of providers, coupled to page size.

        With probability ``provider_count_size_coupling`` the draw's
        uniform variate is the page's size quantile (big page ⇒ many
        providers); otherwise it is independent.  A mixture of uniforms
        is uniform, so the marginal Fig. 4(b) distribution survives.
        """
        cfg = self.config
        counts, weights = zip(*cfg.providers_per_page_weights)
        if rng.random() < cfg.provider_count_size_coupling:
            u = self._size_quantile(n_total)
        else:
            u = rng.random()
        total = sum(weights)
        cumulative = 0.0
        for count, weight in zip(counts, weights):
            cumulative += weight / total
            if u <= cumulative:
                return count
        return counts[-1]

    def _choose_providers(
        self, overrides: dict, n_cdn: int, n_total: int, rng: random.Random
    ) -> list[CdnProvider]:
        if "providers" in overrides:
            return [self._provider_by_name[name] for name in overrides["providers"]]
        k = self._provider_count(n_total, rng)
        k = max(1, min(k, n_cdn, len(self.providers)))
        # Market-share-weighted sampling without replacement.
        pool = list(self.providers)
        chosen: list[CdnProvider] = []
        for _ in range(k):
            weights_now = [p.market_share for p in pool]
            pick = rng.choices(pool, weights=weights_now, k=1)[0]
            chosen.append(pick)
            pool.remove(pick)
        return chosen

    def _allocate_resources(
        self, providers: list[CdnProvider], n_cdn: int, rng: random.Random
    ) -> dict[str, int]:
        """Split ``n_cdn`` resources across the page's providers.

        Each chosen provider gets at least one resource (when possible);
        the rest follow market share with multiplicative noise.
        """
        if not providers or n_cdn <= 0:
            return {}
        allocation = {p.name: 0 for p in providers}
        names = list(allocation)
        for name in names[:n_cdn]:
            allocation[name] += 1
        remaining = n_cdn - min(n_cdn, len(names))
        if remaining > 0:
            # Square-root damping: the page already *selected* providers
            # by market share; weighting the within-page allocation by
            # raw share as well would double-count giant dominance.
            weights = [
                math.sqrt(p.market_share) * rng.lognormvariate(0.0, 0.5)
                for p in providers
            ]
            for pick in rng.choices(names, weights=weights, k=remaining):
                allocation[pick] += 1
        return allocation

    # -- host inventory ---------------------------------------------------

    def _choose_provider_hosts(
        self,
        provider: CdnProvider,
        domain: str,
        hosts: dict[str, HostSpec],
        rng: random.Random,
        force_h3: bool = False,
    ) -> list[str]:
        cfg = self.config
        # An "all H3" site (YouTube, WordPress) *selects* H3-capable
        # shared hosts; it must not mutate the global host inventory.
        candidates = list(provider.shared_domains)
        if force_h3:
            h3_candidates = [d for d in candidates if self._shared_h3.get(d)]
            if h3_candidates:
                candidates = h3_candidates
        n_shared = rng.randint(1, min(cfg.max_shared_hosts_per_provider, len(candidates)))
        chosen = rng.sample(candidates, n_shared)
        for hostname in chosen:
            self._ensure_edge_host(hostname, provider, hosts, rng)
        if rng.random() < cfg.custom_cdn_host_prob:
            custom = f"cdn-{provider.name}.{domain}"
            self._ensure_edge_host(custom, provider, hosts, rng, force_h3=force_h3)
            chosen.append(custom)
        return chosen

    def _ensure_edge_host(
        self,
        hostname: str,
        provider: CdnProvider,
        hosts: dict[str, HostSpec],
        rng: random.Random,
        force_h3: bool = False,
    ) -> None:
        if hostname in hosts:
            return
        cfg = self.config
        # Shared hosts use the stratified assignment; page-specific
        # custom hosts fall back to an independent draw.
        stratified = self._shared_h3.get(hostname)
        supports_h3 = (
            stratified
            if stratified is not None
            else rng.random() < provider.h3_adoption
        )
        hosts[hostname] = HostSpec(
            hostname=hostname,
            kind="edge",
            provider_name=provider.name,
            supports_h3=force_h3 or supports_h3,
            supports_h2=True,
            base_rtt_ms=self._provider_rtt[provider.name] * rng.uniform(0.97, 1.03),
            base_think_ms=rng.uniform(*cfg.edge_think_range_ms),
            origin_fetch_ms=rng.uniform(*cfg.origin_fetch_range_ms),
            h3_think_overhead_ms=rng.uniform(*cfg.h3_overhead_range_ms),
            # CDN edges universally run TLS 1.3 (they deploy new TLS
            # features first); it is origins that lag on TLS 1.2.
            tls_version=TlsVersion.TLS13,
        )

    def _ensure_origin_host(
        self,
        hostname: str,
        hosts: dict[str, HostSpec],
        rng: random.Random,
        force_h3: bool = False,
    ) -> None:
        if hostname in hosts:
            return
        cfg = self.config
        roll = rng.random()
        if force_h3:
            supports_h2, supports_h3 = True, True
        elif roll < cfg.origin_h1_only_prob:
            supports_h2, supports_h3 = False, False  # HTTP/1.x only
        elif roll < cfg.origin_h1_only_prob + cfg.origin_h3_prob:
            supports_h2, supports_h3 = True, True
        else:
            supports_h2, supports_h3 = True, False
        hosts[hostname] = HostSpec(
            hostname=hostname,
            kind="origin",
            provider_name=None,
            supports_h3=supports_h3,
            supports_h2=supports_h2,
            base_rtt_ms=rng.uniform(*cfg.origin_rtt_range_ms),
            base_think_ms=rng.uniform(*cfg.origin_think_range_ms),
            h3_think_overhead_ms=rng.uniform(*cfg.h3_overhead_range_ms),
            tls_version=self._draw_tls(rng),
        )

    def _choose_noncdn_hosts(
        self,
        domain: str,
        origin_host: str,
        hosts: dict[str, HostSpec],
        rng: random.Random,
    ) -> list[str]:
        cfg = self.config
        chosen = [origin_host]
        extras = rng.randint(0, cfg.max_extra_origin_hosts)
        for prefix in ("api", "static", "tracker", "ads")[:extras]:
            hostname = f"{prefix}.{domain}"
            self._ensure_origin_host(hostname, hosts, rng)
            chosen.append(hostname)
        return chosen

    def _draw_tls(self, rng: random.Random) -> TlsVersion:
        if rng.random() < self.config.tls12_fraction:
            return TlsVersion.TLS12
        return TlsVersion.TLS13

    def _make_resource(
        self,
        host: str,
        provider_name: str | None,
        index: int,
        rng: random.Random,
        wave1_prob: float | None = None,
    ) -> Resource:
        cfg = self.config
        rtype = self._draw_type(rng)
        if wave1_prob is None:
            wave1_prob = cfg.wave1_fraction
        return Resource(
            url=f"https://{host}/asset/{index}.{rtype.value}",
            host=host,
            rtype=rtype,
            size_bytes=self._draw_size(rng),
            provider_name=provider_name,
            wave=1 if rng.random() < wave1_prob else 0,
            popular=rng.random() < cfg.popular_fraction,
        )

    def generate_lazy(self, seed: int = 0) -> "LazyWebUniverse":
        """Build a lazily-materialized universe (see :class:`LazyWebUniverse`)."""
        return LazyWebUniverse(self.config, seed, providers=self.providers)


# -- lazy universe ------------------------------------------------------


def _lazy_stream_seed(seed: int, label) -> int:
    """Derive an independent RNG seed for one lazy-universe stream.

    Each page index (and the shared-host inventory, label ``"shared"``)
    gets its own BLAKE2b-derived stream, so a page's content is a pure
    function of ``(config, providers, seed, index)`` — independent of
    ``n_sites`` and of which other pages were generated before it.
    """
    digest = hashlib.blake2b(
        f"lazy-universe:{seed}:{label}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class _LayeredHosts(dict):
    """Page-local host dict layered over the shared inventory.

    ``_ensure_edge_host``/``_ensure_origin_host`` early-return when a
    hostname is already present and draw from the page RNG otherwise.
    Resolving shared hostnames through the base layer means those
    ensure-calls consume *zero* page-RNG draws, which is what keeps a
    lazy page bit-identical no matter which pages came before it.
    Writes stay in this dict, so ``dict(layer)`` is exactly the page's
    own (page-local) hosts.
    """

    __slots__ = ("_base",)

    def __init__(self, base: dict) -> None:
        super().__init__()
        self._base = base

    def __missing__(self, key):
        return self._base[key]

    def __contains__(self, key) -> bool:
        return dict.__contains__(self, key) or key in self._base


_NAMED_DOMAIN_INDEX = {domain: i for i, (domain, _) in enumerate(_NAMED_SITES)}
_ORIGIN_PREFIXES = ("www", "api", "static", "tracker", "ads")
_SYNTH_DOMAIN_RE = re.compile(r"[a-z]+(\d+)\.example\.com")


class LazyHostInventory(Mapping):
    """Demand-driven ``hosts`` mapping for :class:`LazyWebUniverse`.

    Shared CDN hostnames resolve from the eagerly-built inventory;
    page-local hostnames (origins and custom CDN hosts embed the page's
    own domain) are parsed back to their page index and resolved by
    generating that page.  Iteration/length only cover hosts that are
    currently materialized — fine for diagnostics, never used by the
    simulator, which looks hosts up by name.
    """

    def __init__(self, universe: "LazyWebUniverse") -> None:
        self._universe = universe

    def __getitem__(self, hostname: str) -> HostSpec:
        universe = self._universe
        spec = universe._shared_hosts.get(hostname)
        if spec is not None:
            return spec
        index = universe._page_index_for_host(hostname)
        if index is None:
            raise KeyError(hostname)
        local = universe._site_entry(index)[1]
        spec = local.get(hostname)
        if spec is None:
            raise KeyError(hostname)
        return spec

    def __iter__(self):
        universe = self._universe
        yield from universe._shared_hosts
        for _, local in universe._cache.values():
            yield from local

    def __len__(self) -> int:
        universe = self._universe
        return len(universe._shared_hosts) + sum(
            len(local) for _, local in universe._cache.values()
        )


class LazyWebUniverse:
    """A :class:`WebUniverse` that materializes pages on demand.

    Instead of generating ``n_sites`` pages up front, the shared CDN
    host inventory is built eagerly from a dedicated RNG stream and
    each page is generated from its own BLAKE2b-derived stream the
    first time it is requested, then held in a small LRU cache.  The
    result: ``page_at(i)`` is bit-identical for any ``n_sites`` prefix
    (a 100 000-site universe agrees with a 100-site one on the first
    100 pages) and memory stays O(cache), not O(n_sites).

    Duck-types the :class:`WebUniverse` surface the measurement stack
    uses: ``config``, ``seed``, ``hosts``, ``host()``, ``page_count``,
    ``page_at()``, ``iter_pages()`` and ``h3_enabled_cdn_resources()``.
    ``pages``/``websites`` still materialize everything — avoid them
    for large ``n_sites``.
    """

    _PAGE_CACHE_SIZE = 128

    def __init__(
        self,
        config: GeneratorConfig | None = None,
        seed: int = 0,
        providers: tuple[CdnProvider, ...] | None = None,
    ) -> None:
        self.config = config or GeneratorConfig()
        self.seed = seed
        self._generator = TopSitesGenerator(self.config, providers)
        self._build_shared_inventory()
        #: index -> (Website, page-local host dict), LRU-bounded.
        self._cache: OrderedDict[int, tuple[Website, dict[str, HostSpec]]] = (
            OrderedDict()
        )
        self.hosts = LazyHostInventory(self)

    def _build_shared_inventory(self) -> None:
        """Pre-generate every shared edge host from a dedicated stream.

        In eager generation shared hosts are created by whichever page
        touches them first, consuming that page's RNG.  Lazily that
        would make page content depend on generation order, so all
        shared specs (and per-provider RTTs / stratified H3 support)
        come from their own stream in fixed provider order instead.
        """
        gen = self._generator
        rng = random.Random(_lazy_stream_seed(self.seed, "shared"))
        gen._shared_h3 = gen._assign_shared_host_h3(rng)
        lo, hi = self.config.edge_rtt_range_ms
        n = len(gen.providers)
        spread = [lo + (hi - lo) * i / max(1, n - 1) for i in range(n)]
        rng.shuffle(spread)
        gen._provider_rtt = {
            provider.name: rtt for provider, rtt in zip(gen.providers, spread)
        }
        shared: dict[str, HostSpec] = {}
        for provider in gen.providers:
            for hostname in provider.shared_domains:
                gen._ensure_edge_host(hostname, provider, shared, rng)
        self._shared_hosts = shared

    # -- page materialization ------------------------------------------

    def _site_entry(self, index: int) -> tuple[Website, dict[str, HostSpec]]:
        if not 0 <= index < self.config.n_sites:
            raise IndexError(f"page index {index} out of range")
        entry = self._cache.get(index)
        if entry is not None:
            self._cache.move_to_end(index)
            return entry
        rank = index + 1
        rng = random.Random(_lazy_stream_seed(self.seed, index))
        domain, overrides = self._generator._site_identity(rank, rng)
        local = _LayeredHosts(self._shared_hosts)
        page = self._generator._generate_page(domain, rank, overrides, local, rng)
        entry = (Website(domain=domain, rank=rank, landing_page=page), dict(local))
        self._cache[index] = entry
        if len(self._cache) > self._PAGE_CACHE_SIZE:
            self._cache.popitem(last=False)
        return entry

    def site_at(self, index: int) -> Website:
        return self._site_entry(index)[0]

    def page_at(self, index: int) -> Webpage:
        return self._site_entry(index)[0].landing_page

    @property
    def page_count(self) -> int:
        return self.config.n_sites

    def iter_pages(self, n: int | None = None):
        """Yield the first ``n`` pages (all ``n_sites`` when None)."""
        count = self.page_count if n is None else min(n, self.page_count)
        for index in range(count):
            yield self.page_at(index)

    @property
    def pages(self) -> tuple[Webpage, ...]:
        """Materialize every page — avoid for large ``n_sites``."""
        return tuple(self.iter_pages())

    @property
    def websites(self) -> tuple[Website, ...]:
        """Materialize every site — avoid for large ``n_sites``."""
        return tuple(self.site_at(i) for i in range(self.page_count))

    # -- WebUniverse surface -------------------------------------------

    def host(self, hostname: str) -> HostSpec:
        return self.hosts[hostname]

    def h3_enabled_cdn_resources(self, page: Webpage) -> int:
        return sum(
            1 for r in page.cdn_resources if self.hosts[r.host].supports_h3
        )

    def _page_index_for_host(self, hostname: str) -> int | None:
        """Recover the page index a page-local hostname belongs to."""
        candidates = [hostname]
        head, sep, tail = hostname.partition(".")
        if sep and (head in _ORIGIN_PREFIXES or head.startswith("cdn-")):
            candidates.append(tail)
        n = self.config.n_sites
        for domain in candidates:
            named = _NAMED_DOMAIN_INDEX.get(domain)
            if named is not None and named < n:
                return named
            match = _SYNTH_DOMAIN_RE.fullmatch(domain)
            if match:
                rank = int(match.group(1))
                if 1 <= rank <= n:
                    return rank - 1
        return None

    def __getstate__(self):
        # Workers regenerate pages on demand; shipping the cache would
        # defeat the memory bound.
        state = self.__dict__.copy()
        state["_cache"] = OrderedDict()
        return state

    def __repr__(self) -> str:
        return (
            f"LazyWebUniverse(n_sites={self.config.n_sites}, seed={self.seed}, "
            f"cached_pages={len(self._cache)})"
        )


def lazy_universe(
    config: GeneratorConfig | None = None, seed: int = 0
) -> LazyWebUniverse:
    """Build a default-provider :class:`LazyWebUniverse`.

    Construction only materializes the shared host inventory (cheap),
    so no memoization is needed — unlike :func:`cached_universe`.
    """
    return LazyWebUniverse(config, seed)
