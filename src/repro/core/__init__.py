"""The paper's analyses: the primary contribution of this reproduction.

Each module maps to a slice of the paper's evaluation:

========================  ===========================================
Module                    Paper content
========================  ===========================================
:mod:`~repro.core.metrics`          X_reduction metrics (Section III-C)
:mod:`~repro.core.adoption`         Table II, Fig. 2 (Section IV)
:mod:`~repro.core.characteristics`  Figs. 3-5 (Section V)
:mod:`~repro.core.groups`           Fig. 6 (Section VI-B)
:mod:`~repro.core.reuse`            Fig. 7 (Section VI-C)
:mod:`~repro.core.sharing`          Fig. 8, Table III (Section VI-D)
:mod:`~repro.core.congestion`       Fig. 9 (Section VI-E)
:mod:`~repro.core.advisor`          adaptive protocol selection
                                    (Section VII, "Researchers")
:mod:`~repro.core.study`            one-stop orchestration facade
========================  ===========================================
"""

from repro.core.adoption import AdoptionTable, ProviderAdoption, adoption_table, provider_adoption
from repro.core.characteristics import (
    cdn_fraction_ccdf,
    pages_by_provider_count,
    provider_page_probability,
    provider_resource_ccdf,
)
from repro.core.congestion import LossSweepSeries, loss_sweep
from repro.core.groups import (
    GROUP_LABELS,
    group_pages_by_h3_adoption,
    h3_enabled_entry_count,
    phase_reduction_distributions,
    plt_reduction_by_group,
)
from repro.core.metrics import PhaseReductions, paired_entry_reductions, reduction
from repro.core.reuse import (
    plt_reduction_by_reuse_difference,
    reuse_difference_by_group,
    reused_counts_by_group,
)
from repro.core.sharing import (
    CaseStudyResult,
    SharingGroupStats,
    case_study,
    domain_vectors,
    plt_reduction_by_provider_count,
    resumed_by_provider_count,
)
from repro.core.study import H3CdnStudy, StudyConfig

__all__ = [
    "AdoptionTable",
    "CaseStudyResult",
    "GROUP_LABELS",
    "H3CdnStudy",
    "LossSweepSeries",
    "PhaseReductions",
    "ProviderAdoption",
    "SharingGroupStats",
    "StudyConfig",
    "adoption_table",
    "case_study",
    "cdn_fraction_ccdf",
    "domain_vectors",
    "group_pages_by_h3_adoption",
    "h3_enabled_entry_count",
    "loss_sweep",
    "paired_entry_reductions",
    "pages_by_provider_count",
    "phase_reduction_distributions",
    "plt_reduction_by_group",
    "plt_reduction_by_provider_count",
    "plt_reduction_by_reuse_difference",
    "provider_adoption",
    "provider_page_probability",
    "provider_resource_ccdf",
    "reduction",
    "resumed_by_provider_count",
    "reuse_difference_by_group",
    "reused_counts_by_group",
]
