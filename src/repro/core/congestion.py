"""Loss-sweep congestion analysis: Fig. 9 (Section VI-E).

The paper injects 0 %, 0.5 % and 1 % loss with ``tc netem`` and plots
PLT reduction against the number of CDN resources per page, with a
linear fit per loss rate.  The headline is the slope ordering: more
loss ⇒ steeper benefit per CDN resource (H3's stream multiplexing
absorbs TCP's HoL penalty, which grows with both loss and content).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.analysis.stats import LinearFit, linear_fit, median
from repro.measurement.campaign import CampaignConfig
from repro.measurement.executor import MultiCampaignPlan, execute
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse

#: The paper's loss rates.
DEFAULT_LOSS_RATES = (0.0, 0.005, 0.01)


@dataclass(frozen=True)
class LossSweepSeries:
    """One loss-rate curve of Fig. 9.

    ``fit`` is the ordinary least-squares line over the raw scatter;
    ``robust_fit`` first bins pages by CDN-resource count and fits the
    per-bin *median* reductions, which tames the heavy-tailed noise of
    individual lossy page loads (unlucky retransmission-timeout chains
    can swing a single page by seconds).  The paper's smooth "fitted
    curves" correspond to the robust variant.
    """

    loss_rate: float
    #: (number of CDN resources on the page, PLT reduction in ms)
    points: tuple[tuple[int, float], ...]
    fit: LinearFit
    robust_fit: LinearFit

    @property
    def slope(self) -> float:
        """ms of extra PLT reduction per additional CDN resource (OLS
        over the raw scatter — the headline estimate; ``robust_fit``
        gives the binned-median cross-check)."""
        return self.fit.slope


def binned_median_fit(
    points: Sequence[tuple[int, float]], n_bins: int = 8
) -> LinearFit:
    """OLS over per-bin medians, with equal-*count* bins.

    Points are sorted by x and split into ``n_bins`` equally populated
    bins; each contributes its (median x, median y).  Equal-count bins
    avoid giving the sparse large-page tail the leverage equal-width
    bins would, which matters because individual lossy page loads are
    heavy-tailed.  Falls back to the raw OLS fit for degenerate inputs.
    """
    ordered = sorted((float(x), y) for x, y in points)
    xs = [x for x, __ in ordered]
    if xs[0] == xs[-1] or n_bins < 2 or len(ordered) < 2 * n_bins:
        return linear_fit(xs, [y for __, y in ordered])
    centers, medians = [], []
    base, remainder = divmod(len(ordered), n_bins)
    start = 0
    for index in range(n_bins):
        size = base + (1 if index < remainder else 0)
        chunk = ordered[start : start + size]
        start += size
        centers.append(median([x for x, __ in chunk]))
        medians.append(median([y for __, y in chunk]))
    if len(set(centers)) < 2:
        return linear_fit(xs, [y for __, y in ordered])
    return linear_fit(centers, medians)


def loss_sweep(
    universe: WebUniverse,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    pages: Sequence[Webpage] | None = None,
    seed: int = 0,
    repetitions: int = 1,
    campaign_config: CampaignConfig | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    store=None,
    run_prefix: str | None = None,
    resume: bool = False,
) -> list[LossSweepSeries]:
    """Run the Fig. 9 experiment: one campaign per loss rate.

    ``repetitions`` re-runs each campaign with distinct seeds and pools
    the points — loss is stochastic, so the paper-style fitted slopes
    stabilize with a few repetitions.

    All ``loss_rate × repetition`` campaigns are submitted to one
    worker pool (``workers > 1``), so every loss rate is just another
    set of independent shards rather than a serial outer loop.  With a
    :class:`~repro.store.ResultStore` attached, each ``loss_rate ×
    repetition`` campaign is a separate named run under ``run_prefix``
    and already-stored visits are replayed instead of re-simulated.
    """
    target_pages = tuple(pages if pages is not None else universe.pages)
    base = campaign_config or CampaignConfig()
    # replace() keeps every other knob from the caller's config; the
    # old field-by-field copy silently dropped anything added after it
    # was written (fault_profile, collect_counters, trace, strict).
    configs = {
        (loss_rate, repetition): replace(
            base, loss_rate=loss_rate, seed=seed + repetition
        )
        for loss_rate in loss_rates
        for repetition in range(repetitions)
    }
    results = execute(MultiCampaignPlan(
        universe=universe,
        configs=configs,
        pages=target_pages,
        workers=workers,
        chunk_size=chunk_size,
        store=store,
        run_prefix=run_prefix,
        resume=resume,
    ))
    series: list[LossSweepSeries] = []
    for loss_rate in loss_rates:
        points: list[tuple[int, float]] = []
        for repetition in range(repetitions):
            result = results[(loss_rate, repetition)]
            points.extend(
                (len(pv.page.cdn_resources), pv.plt_reduction_ms)
                for pv in result.paired_visits
            )
        xs = [float(x) for x, __ in points]
        ys = [y for __, y in points]
        series.append(
            LossSweepSeries(
                loss_rate=loss_rate,
                points=tuple(points),
                fit=linear_fit(xs, ys),
                robust_fit=binned_median_fit(points),
            )
        )
    return series


def slopes_are_ordered(series: Sequence[LossSweepSeries]) -> bool:
    """The paper's check: slope strictly increases with loss rate."""
    ordered = sorted(series, key=lambda s: s.loss_rate)
    return all(
        earlier.slope < later.slope
        for earlier, later in zip(ordered, ordered[1:])
    )
