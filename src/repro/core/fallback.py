"""Fault-intensity sweep: H3→H2 fallback under UDP blackholing.

The paper's applicability question has a flip side the testbed can ask
directly: what happens to H3's advantage when QUIC stops working?  UDP
blocking is the dominant real-world H3 failure mode (enterprise
middleboxes and firewalls drop UDP/443 wholesale), and Chrome's answer
is Alt-Svc demotion — fall back to H2 over TCP.

This sweep reproduces that story end to end: for each intensity *f*, a
fraction *f* of hosts (chosen by a stable hash, so the sets are nested
across intensities) has its UDP blackholed.  The browser's recovery
stack — QUIC connect timeout, Alt-Svc demotion, re-dispatch over TCP —
keeps every page load completing, but each fallback costs a wasted
connect timeout and surrenders H3's 1-RTT handshake edge.  The headline
curve: fallback rate rises monotonically with intensity while the mean
PLT reduction (H2 − H3) shrinks and then inverts — blocked-QUIC "H3"
visits are strictly worse than native H2, because they pay the probe
timeout *and then* run over TCP anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.faults.presets import udp_blackhole_profile
from repro.measurement.campaign import CampaignConfig
from repro.measurement.executor import MultiCampaignPlan, execute
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse

#: Default fault intensities (fraction of hosts with UDP blackholed).
DEFAULT_INTENSITIES = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class FallbackSweepPoint:
    """One intensity of the fallback sweep."""

    #: Fraction of hosts whose UDP is blackholed.
    intensity: float
    #: Fraction of H3-capable fetches (in the H3-enabled mode) that were
    #: NOT served over H3 — i.e. fell back to TCP.
    fallback_rate: float
    #: Mean PLT_H2 − PLT_H3 across paired visits (positive ⇒ H3 wins).
    mean_plt_reduction_ms: float
    #: Paired visits where fault recovery degraded either mode.
    degraded_visits: int
    #: Visits that failed outright (graceful-degradation records).
    failed_visits: int
    #: Paired visits measured at this intensity.
    paired_visits: int


def fallback_sweep(
    universe: WebUniverse,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    pages: Sequence[Webpage] | None = None,
    seed: int = 0,
    campaign_config: CampaignConfig | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    store=None,
    run_prefix: str | None = None,
    resume: bool = False,
) -> list[FallbackSweepPoint]:
    """Run the fig-fallback experiment: one campaign per intensity.

    All intensities share one worker pool (each campaign's visits are
    just more independent shards) and the same seed, so the only thing
    that differs between points is the fault profile.  Host targeting
    uses one salt across intensities, making the blackholed sets nested
    — which is what guarantees the fallback rate is monotone in the
    intensity rather than merely trending upward.
    """
    target_pages = tuple(pages if pages is not None else universe.pages)
    base = campaign_config or CampaignConfig()
    configs = {
        ("faults", intensity): replace(
            base,
            seed=seed,
            fault_profile=(
                udp_blackhole_profile(intensity) if intensity > 0.0 else None
            ),
        )
        for intensity in intensities
    }
    results = execute(MultiCampaignPlan(
        universe=universe,
        configs=configs,
        pages=target_pages,
        workers=workers,
        chunk_size=chunk_size,
        store=store,
        run_prefix=run_prefix,
        resume=resume,
    ))
    points: list[FallbackSweepPoint] = []
    for intensity in intensities:
        result = results[("faults", intensity)]
        eligible = 0
        fell_back = 0
        for entry in result.entries("h3-enabled"):
            host_spec = universe.hosts.get(entry.host)
            if host_spec is None or not host_spec.supports_h3:
                continue
            eligible += 1
            if entry.protocol != "h3":
                fell_back += 1
        reductions = [pv.plt_reduction_ms for pv in result.paired_visits]
        points.append(
            FallbackSweepPoint(
                intensity=intensity,
                fallback_rate=fell_back / eligible if eligible else 0.0,
                mean_plt_reduction_ms=(
                    sum(reductions) / len(reductions) if reductions else 0.0
                ),
                degraded_visits=len(result.degraded_visits()),
                failed_visits=len(result.failures),
                paired_visits=len(result.paired_visits),
            )
        )
    return points


def fallback_rates_are_monotone(points: Sequence[FallbackSweepPoint]) -> bool:
    """The sweep's headline check: fallback rate never decreases with
    intensity (nested host targeting makes this exact, not statistical)."""
    ordered = sorted(points, key=lambda p: p.intensity)
    return all(
        earlier.fallback_rate <= later.fallback_rate
        for earlier, later in zip(ordered, ordered[1:])
    )


def edge_inverts(points: Sequence[FallbackSweepPoint]) -> bool:
    """Whether H3's PLT edge flips negative at full blackholing."""
    ordered = sorted(points, key=lambda p: p.intensity)
    return bool(ordered) and ordered[-1].mean_plt_reduction_ms < 0.0
