"""CDN-usage characteristics: the paper's Section V (Figs. 3, 4, 5).

These are composition facts about the measured pages.  They accept
either ground-truth :class:`~repro.web.page.Webpage` objects or a
page's HAR entries (classification output) — the paper computes them
from the HAR + LocEdge; both views agree in this harness and tests
assert so.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.analysis.stats import EmpiricalDistribution
from repro.web.page import Webpage


def cdn_fraction_ccdf(pages: Sequence[Webpage]) -> EmpiricalDistribution:
    """Distribution of per-page CDN resource percentage (Fig. 3).

    The paper reads this as a CCDF: "75 % of webpages have exceeded
    50 % CDN resources" ⇔ ``ccdf(0.5) ≈ 0.75``.
    """
    return EmpiricalDistribution([page.cdn_fraction for page in pages])


def provider_page_probability(pages: Sequence[Webpage]) -> dict[str, float]:
    """P(provider appears on a page), descending (Fig. 4a)."""
    if not pages:
        raise ValueError("no pages")
    appearance: Counter[str] = Counter()
    for page in pages:
        for provider in page.providers:
            appearance[provider] += 1
    probabilities = {name: count / len(pages) for name, count in appearance.items()}
    return dict(sorted(probabilities.items(), key=lambda kv: kv[1], reverse=True))


def pages_by_provider_count(pages: Sequence[Webpage]) -> dict[int, int]:
    """Number of pages using exactly k providers (Fig. 4b)."""
    counts: Counter[int] = Counter(page.provider_count for page in pages)
    return dict(sorted(counts.items()))


def multi_provider_share(pages: Sequence[Webpage]) -> float:
    """Fraction of pages using >= 2 providers (paper: 94.8 %)."""
    if not pages:
        raise ValueError("no pages")
    return sum(1 for page in pages if page.provider_count >= 2) / len(pages)


def provider_resource_ccdf(
    pages: Sequence[Webpage], provider: str
) -> EmpiricalDistribution:
    """Per-page count of ``provider``'s resources, over pages that use
    it at all (Fig. 5)."""
    counts = [
        page.resources_by_provider()[provider]
        for page in pages
        if provider in page.providers
    ]
    if not counts:
        raise ValueError(f"no page uses provider {provider!r}")
    return EmpiricalDistribution([float(c) for c in counts])


def cdn_fraction_ccdf_from_entries(
    pages_entries: Iterable[Sequence],
) -> EmpiricalDistribution:
    """Fig. 3 computed the paper's way: from classified HAR entries.

    ``pages_entries`` yields, per page, that page's HAR entries; the
    CDN flag comes from the LocEdge-style classifier.
    """
    fractions = []
    for entries in pages_entries:
        entries = list(entries)
        if not entries:
            continue
        fractions.append(sum(1 for e in entries if e.is_cdn) / len(entries))
    return EmpiricalDistribution(fractions)
