"""Adaptive protocol selection — the paper's "Researchers" implication.

Section VII suggests "developing an adaptive protocol selection tool
that adjusts flexibly based on different conditions", citing the
authors' FlexHTTP work.  This module implements a rule-based advisor
distilled from the paper's own findings:

* Takeaway 2 — many H3-capable CDN resources amplify H3's fast
  connection, **but** heavy H2 connection reuse erodes the benefit
  (the Fig. 6a/7 turning point).
* Takeaway 3 — consecutive browsing across pages sharing giant
  providers favours H3's 0-RTT resumption.
* Takeaway 4 — lossy networks with many CDN resources favour H3's
  stream multiplexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sharing import giant_provider_count
from repro.measurement.farm import ProbeNetProfile
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse


@dataclass(frozen=True)
class ProtocolAdvice:
    """The advisor's verdict for one page under given conditions."""

    protocol: str  # "h3" or "h2"
    score: float  # positive favours H3
    reasons: tuple[str, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class AdvisorWeights:
    """Tunable weights of the scoring rules (defaults fit the study)."""

    h3_resource_weight: float = 0.6
    reuse_penalty_weight: float = 0.8
    sharing_weight: float = 8.0
    loss_weight: float = 2_000.0
    base_h3_bonus: float = 5.0


def advise(
    page: Webpage,
    universe: WebUniverse,
    network: ProbeNetProfile | None = None,
    consecutive_browsing: bool = False,
    weights: AdvisorWeights | None = None,
) -> ProtocolAdvice:
    """Recommend H2 or H3 for loading ``page`` under ``network``.

    The score aggregates the paper's mechanisms; a positive total
    recommends H3.  The returned reasons list is human-readable and
    ordered by the rules that fired.
    """
    weights = weights or AdvisorWeights()
    network = network or ProbeNetProfile()
    reasons: list[str] = []
    score = weights.base_h3_bonus
    reasons.append("baseline: H3 saves one handshake RTT per new connection")

    h3_capable = universe.h3_enabled_cdn_resources(page)
    score += weights.h3_resource_weight * h3_capable
    if h3_capable:
        reasons.append(
            f"{h3_capable} CDN resources are H3-capable (fast-connection amplification)"
        )

    # Heavy same-host concentration means H2 reuse already removes most
    # handshakes — the paper's turning point (Section VI-C).
    host_counts: dict[str, int] = {}
    for resource in page.cdn_resources:
        host_counts[resource.host] = host_counts.get(resource.host, 0) + 1
    expected_reuse = sum(count - 1 for count in host_counts.values() if count > 1)
    score -= weights.reuse_penalty_weight * expected_reuse * (
        1.0 - (h3_capable / max(1, len(page.cdn_resources)))
    )
    if expected_reuse:
        reasons.append(
            f"~{expected_reuse} requests will reuse H2 connections (turning-point penalty)"
        )

    if consecutive_browsing:
        sharing = giant_provider_count(page)
        score += weights.sharing_weight * sharing
        reasons.append(
            f"consecutive browsing with {sharing} giant providers (0-RTT resumption)"
        )

    if network.loss_rate > 0.0:
        score += weights.loss_weight * network.loss_rate * (
            len(page.cdn_resources) / 50.0
        )
        reasons.append(
            f"{network.loss_rate:.1%} loss with {len(page.cdn_resources)} CDN "
            "resources (HoL mitigation)"
        )

    return ProtocolAdvice(
        protocol="h3" if score > 0 else "h2",
        score=score,
        reasons=tuple(reasons),
    )
