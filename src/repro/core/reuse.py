"""Reused-connection analysis: Fig. 7 (Section VI-C).

The paper determines reuse from the HAR: a request whose connection
time is 0 rode a reused connection.  Three views:

* Fig. 7(a) — reused-connection counts per quartile group, H2 vs H3.
* Fig. 7(b) — the *reused connection difference* (H2 count − H3 count)
  per group; positive means H2 reuses more.
* Fig. 7(c) — PLT reduction as a function of that difference: more H2
  reuse ⇒ less room for H3 to win (the 'turning point').
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import mean
from repro.core.groups import GROUP_LABELS, group_pages_by_h3_adoption
from repro.measurement.campaign import CampaignResult, PairedVisit


def reused_connection_difference(paired: PairedVisit) -> int:
    """H2's reused-connection count minus H3's (paper's metric)."""
    return (
        paired.h2.har.reused_connection_count()
        - paired.h3.har.reused_connection_count()
    )


@dataclass(frozen=True)
class GroupReuse:
    """One group's bars in Fig. 7(a) / point in Fig. 7(b)."""

    label: str
    mean_reused_h2: float
    mean_reused_h3: float
    n_pages: int

    @property
    def mean_difference(self) -> float:
        return self.mean_reused_h2 - self.mean_reused_h3


def reused_counts_by_group(result: CampaignResult) -> list[GroupReuse]:
    """Figs. 7(a)+(b): reuse counts per quartile group."""
    groups = group_pages_by_h3_adoption(result)
    out = []
    for label in GROUP_LABELS:
        pairs = groups[label]
        if not pairs:
            continue
        out.append(
            GroupReuse(
                label=label,
                mean_reused_h2=mean(
                    float(pv.h2.har.reused_connection_count()) for pv in pairs
                ),
                mean_reused_h3=mean(
                    float(pv.h3.har.reused_connection_count()) for pv in pairs
                ),
                n_pages=len(pairs),
            )
        )
    return out


def reuse_difference_by_group(result: CampaignResult) -> dict[str, float]:
    """Fig. 7(b) as a mapping label → mean difference."""
    return {g.label: g.mean_difference for g in reused_counts_by_group(result)}


@dataclass(frozen=True)
class ReuseBin:
    """One x-position of Fig. 7(c)."""

    difference_low: int
    difference_high: int
    mean_plt_reduction_ms: float
    n_pages: int

    @property
    def center(self) -> float:
        return (self.difference_low + self.difference_high) / 2.0


def plt_reduction_by_reuse_difference(
    result: CampaignResult, n_bins: int = 5
) -> list[ReuseBin]:
    """Fig. 7(c): PLT reduction vs reused-connection difference.

    Paired visits are bucketed into ``n_bins`` equal-width bins of the
    difference; empty bins are dropped.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    samples = [
        (reused_connection_difference(pv), pv.plt_reduction_ms)
        for pv in result.paired_visits
    ]
    if not samples:
        raise ValueError("no paired visits")
    lo = min(d for d, __ in samples)
    hi = max(d for d, __ in samples)
    if lo == hi:
        return [
            ReuseBin(lo, hi, mean(r for __, r in samples), len(samples))
        ]
    width = (hi - lo) / n_bins
    bins: list[ReuseBin] = []
    for i in range(n_bins):
        low = lo + i * width
        high = lo + (i + 1) * width
        members = [
            r
            for d, r in samples
            if (low <= d < high) or (i == n_bins - 1 and d == high)
        ]
        if not members:
            continue
        bins.append(
            ReuseBin(
                difference_low=round(low),
                difference_high=round(high),
                mean_plt_reduction_ms=mean(members),
                n_pages=len(members),
            )
        )
    return bins
