"""The paper's X_reduction metrics (Section III-C).

``X_reduction = X_H2 − X_H3`` for any metric X; positive means H3 wins.
Page-level X is PLT; entry-level X is connection, wait, or receive
time, paired across the two protocol runs by resource URL (each visit
fetches every URL exactly once).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.har import HarEntry
from repro.measurement.campaign import PairedVisit


def reduction(h2_value: float, h3_value: float) -> float:
    """``X_reduction`` as defined in the paper: H2 minus H3."""
    return h2_value - h3_value


@dataclass(frozen=True)
class PhaseReductions:
    """Per-entry reductions of the three request phases (Fig. 6b)."""

    url: str
    connection: float
    wait: float
    receive: float


def paired_entry_reductions(paired: PairedVisit) -> list[PhaseReductions]:
    """Pair each URL's H2 and H3 entries and compute phase reductions.

    URLs fetched in only one of the two runs (which cannot happen with
    this harness, but could with real HAR files) are skipped.
    """
    h2_by_url: dict[str, HarEntry] = {e.url: e for e in paired.h2.entries}
    out: list[PhaseReductions] = []
    for h3_entry in paired.h3.entries:
        h2_entry = h2_by_url.get(h3_entry.url)
        if h2_entry is None:
            continue
        out.append(
            PhaseReductions(
                url=h3_entry.url,
                connection=reduction(h2_entry.connection_time, h3_entry.connection_time),
                wait=reduction(h2_entry.wait_time, h3_entry.wait_time),
                receive=reduction(h2_entry.receive_time, h3_entry.receive_time),
            )
        )
    return out
