"""H3 adoption analysis: the paper's Table II and Fig. 2 (Section IV).

Both read the HAR entries of the **H3-enabled** run: requests that
actually went over H3 are the adopted ones; everything H2 is the
unadopted remainder; HTTP/1.x lands in the "Others" bucket.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.browser.har import HarEntry
from repro.cdn.provider import default_providers

#: Table II row labels.
ROW_H2 = "HTTP/2"
ROW_H3 = "HTTP/3"
ROW_OTHERS = "Others"
ROW_ALL = "All"


@dataclass(frozen=True)
class AdoptionCell:
    """One (protocol row, CDN column) cell: count and share of total."""

    requests: int
    percent: float


@dataclass
class AdoptionTable:
    """The paper's Table II: requests by HTTP version × CDN/non-CDN."""

    cells: dict[tuple[str, str], AdoptionCell]
    total_requests: int

    def cell(self, row: str, column: str) -> AdoptionCell:
        """``row`` in {HTTP/2, HTTP/3, Others, All}; ``column`` in
        {cdn, non_cdn, all}."""
        return self.cells[(row, column)]

    @property
    def cdn_share(self) -> float:
        """Fraction of all requests served by CDNs (paper: 67.0 %)."""
        return self.cell(ROW_ALL, "cdn").percent / 100.0

    @property
    def h3_share(self) -> float:
        """Fraction of all requests using H3 (paper: 32.6 %)."""
        return self.cell(ROW_H3, "all").percent / 100.0

    @property
    def h3_cdn_share_of_h3(self) -> float:
        """Share of H3 requests that are CDN requests (paper: 78.8 %)."""
        h3_all = self.cell(ROW_H3, "all").requests
        if h3_all == 0:
            return 0.0
        return self.cell(ROW_H3, "cdn").requests / h3_all


def _row_for(entry: HarEntry) -> str:
    if entry.protocol == "h3":
        return ROW_H3
    if entry.protocol == "h2":
        return ROW_H2
    return ROW_OTHERS


def adoption_table(entries: Iterable[HarEntry]) -> AdoptionTable:
    """Build Table II from the H3-enabled run's entries."""
    counts: Counter[tuple[str, str]] = Counter()
    total = 0
    for entry in entries:
        total += 1
        column = "cdn" if entry.is_cdn else "non_cdn"
        row = _row_for(entry)
        counts[(row, column)] += 1
    if total == 0:
        raise ValueError("no entries to tabulate")

    cells: dict[tuple[str, str], AdoptionCell] = {}
    rows = (ROW_H2, ROW_H3, ROW_OTHERS)
    for row in rows:
        cdn = counts[(row, "cdn")]
        non_cdn = counts[(row, "non_cdn")]
        for column, value in (("cdn", cdn), ("non_cdn", non_cdn), ("all", cdn + non_cdn)):
            cells[(row, column)] = AdoptionCell(value, 100.0 * value / total)
    for column in ("cdn", "non_cdn", "all"):
        value = sum(cells[(row, column)].requests for row in rows)
        cells[(ROW_ALL, column)] = AdoptionCell(value, 100.0 * value / total)
    return AdoptionTable(cells=cells, total_requests=total)


@dataclass(frozen=True)
class ProviderAdoption:
    """One provider's bar in Fig. 2."""

    provider: str
    h2_requests: int
    h3_requests: int

    @property
    def total(self) -> int:
        return self.h2_requests + self.h3_requests

    @property
    def h3_fraction(self) -> float:
        """H3 share of this provider's own requests."""
        return self.h3_requests / self.total if self.total else 0.0


def provider_adoption(entries: Iterable[HarEntry]) -> list[ProviderAdoption]:
    """Per-provider H2/H3 request counts from the H3-enabled run (Fig. 2).

    Returned in decreasing order of total requests (market share among
    the measured CDN requests).
    """
    h2: Counter[str] = Counter()
    h3: Counter[str] = Counter()
    for entry in entries:
        if not entry.is_cdn or entry.provider is None:
            continue
        if entry.protocol == "h3":
            h3[entry.provider] += 1
        else:
            h2[entry.provider] += 1
    providers = {p.name for p in default_providers()} | set(h2) | set(h3)
    rows = [
        ProviderAdoption(provider=name, h2_requests=h2[name], h3_requests=h3[name])
        for name in providers
        if h2[name] or h3[name]
    ]
    rows.sort(key=lambda r: r.total, reverse=True)
    return rows


def h3_share_by_provider(rows: list[ProviderAdoption]) -> dict[str, float]:
    """Each provider's share of all H3-enabled CDN requests (Fig. 2's
    headline: Google ≈ 50 %, Cloudflare ≈ 45 %)."""
    total_h3 = sum(row.h3_requests for row in rows)
    if total_h3 == 0:
        return {row.provider: 0.0 for row in rows}
    return {row.provider: row.h3_requests / total_h3 for row in rows}
