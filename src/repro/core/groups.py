"""Quartile-group analysis of H3 adoption benefit: Fig. 6 (Section VI-B).

Pages are grouped by how many of their CDN resources actually went over
H3 in the H3-enabled run ('quartiles of the number of H3-enabled CDN
resources', equal group sizes).  Fig. 6(a) is the mean PLT reduction
per group; Fig. 6(b) is the distribution of per-request phase
reductions, whose medians carry the paper's second finding (connection
> 0, wait < 0, receive ≈ 0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import EmpiricalDistribution, mean, quartile_groups
from repro.browser.browser import PageVisit
from repro.core.metrics import paired_entry_reductions
from repro.measurement.campaign import CampaignResult, PairedVisit

#: The paper's group names, in increasing H3-adoption order.
GROUP_LABELS = ("Low", "Medium-Low", "Medium-High", "High")


def h3_enabled_entry_count(visit: PageVisit) -> int:
    """CDN requests that actually used H3 in this visit."""
    return sum(1 for e in visit.entries if e.is_cdn and e.protocol == "h3")


def group_pages_by_h3_adoption(
    result: CampaignResult,
) -> dict[str, list[PairedVisit]]:
    """Split paired visits into the four quartile groups."""
    return quartile_groups(
        result.paired_visits,
        key=lambda pv: h3_enabled_entry_count(pv.h3),
        labels=GROUP_LABELS,
    )


@dataclass(frozen=True)
class GroupReduction:
    """One bar of Fig. 6(a)."""

    label: str
    mean_plt_reduction_ms: float
    n_pages: int
    mean_h3_entries: float


def plt_reduction_by_group(result: CampaignResult) -> list[GroupReduction]:
    """Fig. 6(a): mean PLT reduction per quartile group."""
    groups = group_pages_by_h3_adoption(result)
    out = []
    for label in GROUP_LABELS:
        pairs = groups[label]
        if not pairs:
            continue
        out.append(
            GroupReduction(
                label=label,
                mean_plt_reduction_ms=mean(pv.plt_reduction_ms for pv in pairs),
                n_pages=len(pairs),
                mean_h3_entries=mean(
                    float(h3_enabled_entry_count(pv.h3)) for pv in pairs
                ),
            )
        )
    return out


def phase_reduction_distributions(
    result: CampaignResult, per_page: bool = True
) -> dict[str, EmpiricalDistribution]:
    """Fig. 6(b): distributions of connection/wait/receive reductions.

    With ``per_page=True`` (default) each sample is one page's mean
    phase reduction across its URLs — robust to the mass of reused
    entries whose connect time is 0 under both protocols.  With
    ``per_page=False`` every URL contributes a sample.  Either way the
    medians carry the paper's finding: connection reduction > 0 (H3's
    fast handshake), wait < 0 (H3 compute overhead), receive ≈ 0.
    """
    connection: list[float] = []
    wait: list[float] = []
    receive: list[float] = []
    for paired in result.paired_visits:
        phases = paired_entry_reductions(paired)
        if not phases:
            continue
        if per_page:
            connection.append(mean(p.connection for p in phases))
            wait.append(mean(p.wait for p in phases))
            receive.append(mean(p.receive for p in phases))
        else:
            connection.extend(p.connection for p in phases)
            wait.extend(p.wait for p in phases)
            receive.extend(p.receive for p in phases)
    return {
        "connection": EmpiricalDistribution(connection),
        "wait": EmpiricalDistribution(wait),
        "receive": EmpiricalDistribution(receive),
    }
