"""Shared-provider analysis: Fig. 8 and Table III (Section VI-D).

Consecutive browsing with a persistent TLS session-ticket store lets a
page resume connections to CDN hostnames that *earlier pages* already
contacted.  The more giant providers a page shares with its
predecessors, the more 0-RTT resumptions H3 gets, and the larger the
PLT reduction — that is Fig. 8.  Table III sharpens it into a case
study: k-means over binary domain-usage vectors splits the cohort into
a high-sharing and a low-sharing group, and the high-sharing group
must show roughly double the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.kmeans import kmeans
from repro.analysis.stats import mean
from repro.cdn.provider import GIANT_PROVIDERS
from repro.core.metrics import reduction
from repro.measurement.consecutive import ConsecutiveRun
from repro.measurement.executor import ConsecutivePlan, execute
from repro.measurement.farm import ProbeNetProfile
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse


def giant_provider_count(page: Webpage) -> int:
    """Providers used on ``page`` among the paper's six giants."""
    return len(page.providers & set(GIANT_PROVIDERS))


def plt_reduction_by_provider_count(
    h2_run: ConsecutiveRun,
    h3_run: ConsecutiveRun,
    pages: Sequence[Webpage],
) -> dict[int, float]:
    """Fig. 8(a): mean PLT reduction vs number of used (giant) providers."""
    if not (len(h2_run.visits) == len(h3_run.visits) == len(pages)):
        raise ValueError("runs and pages must align one-to-one")
    by_count: dict[int, list[float]] = {}
    for page, h2_visit, h3_visit in zip(pages, h2_run.visits, h3_run.visits):
        count = giant_provider_count(page)
        by_count.setdefault(count, []).append(
            reduction(h2_visit.plt_ms, h3_visit.plt_ms)
        )
    return {count: mean(values) for count, values in sorted(by_count.items())}


def resumed_by_provider_count(
    h3_run: ConsecutiveRun, pages: Sequence[Webpage]
) -> dict[int, float]:
    """Fig. 8(b): mean resumed connections vs number of used providers."""
    if len(h3_run.visits) != len(pages):
        raise ValueError("run and pages must align one-to-one")
    by_count: dict[int, list[float]] = {}
    for page, visit in zip(pages, h3_run.visits):
        count = giant_provider_count(page)
        by_count.setdefault(count, []).append(
            float(visit.har.resumed_connection_count())
        )
    return {count: mean(values) for count, values in sorted(by_count.items())}


def domain_vectors(
    pages: Sequence[Webpage],
) -> tuple[list[str], list[tuple[int, ...]], list[Webpage]]:
    """Build the Table III clustering input.

    Following the paper: extract the CDN domains used by the pages,
    drop *outlier* pages none of whose domains appear on any other
    page, and represent each remaining page as a binary vector over the
    cross-page domain vocabulary.
    """
    usage: dict[str, int] = {}
    for page in pages:
        for domain in page.cdn_domains():
            usage[domain] = usage.get(domain, 0) + 1
    shared_domains = sorted(d for d, count in usage.items() if count >= 2)
    kept: list[Webpage] = []
    vectors: list[tuple[int, ...]] = []
    shared_set = set(shared_domains)
    for page in pages:
        page_domains = page.cdn_domains() & shared_set
        if not page_domains:
            continue  # outlier: shares nothing with any other page
        kept.append(page)
        vectors.append(tuple(1 if d in page_domains else 0 for d in shared_domains))
    return shared_domains, vectors, kept


@dataclass(frozen=True)
class SharingGroupStats:
    """One row-group of Table III."""

    label: str
    n_pages: int
    avg_shared_providers: float
    avg_resumed_connections: float
    plt_reduction_ms: float


@dataclass(frozen=True)
class CaseStudyResult:
    """The full Table III: high-sharing (C_H) vs low-sharing (C_L)."""

    high: SharingGroupStats
    low: SharingGroupStats
    n_domains: int
    outliers_removed: int


def case_study(
    universe: WebUniverse,
    pages: Sequence[Webpage] | None = None,
    seed: int = 0,
    net_profile: ProbeNetProfile | None = None,
    strict: bool = False,
) -> CaseStudyResult:
    """Run the paper's Table III case study end to end.

    k-means (k=2) over domain vectors partitions the pages; the group
    with the higher average provider count is C_H.  Each group is then
    measured with consecutive visits under both protocol modes.
    """
    pages = list(pages if pages is not None else universe.pages)
    domains, vectors, kept = domain_vectors(pages)
    if len(kept) < 4:
        raise ValueError("too few non-outlier pages for a case study")
    # k-means on binary domain vectors has many near-equivalent optima;
    # some split by *which* provider dominates rather than by *how
    # much* is shared.  The paper's stated purpose for the clustering
    # is a high-sharing vs low-sharing division, so among restarts we
    # keep the split that best separates sharing degree (and is not
    # degenerate in size).
    best_groups: list[list[Webpage]] | None = None
    best_separation = -1.0
    for restart in range(8):
        clustering = kmeans(vectors, k=2, seed=seed + restart)
        groups = [
            [kept[i] for i in clustering.cluster_indices(label)]
            for label in (0, 1)
        ]
        if min(len(g) for g in groups) < max(2, len(kept) // 10):
            continue  # degenerate split
        separation = abs(
            mean(giant_provider_count(p) for p in groups[0])
            - mean(giant_provider_count(p) for p in groups[1])
        )
        if separation > best_separation:
            best_separation = separation
            best_groups = groups
    if best_groups is None:
        raise ValueError("degenerate clustering: no balanced split found")
    # C_H is the cluster with more shared (giant) providers per page.
    best_groups.sort(key=lambda group: mean(giant_provider_count(p) for p in group))
    low_pages, high_pages = best_groups

    def measure(label: str, group: list[Webpage]) -> SharingGroupStats:
        h2_run, h3_run = execute(ConsecutivePlan(
            universe=universe,
            pages=tuple(group),
            net_profile=net_profile,
            seed=seed,
            strict=strict,
        ))
        return SharingGroupStats(
            label=label,
            n_pages=len(group),
            avg_shared_providers=mean(
                float(giant_provider_count(p)) for p in group
            ),
            avg_resumed_connections=mean(
                float(v.har.resumed_connection_count()) for v in h3_run.visits
            ),
            plt_reduction_ms=mean(
                reduction(h2.plt_ms, h3.plt_ms)
                for h2, h3 in zip(h2_run.visits, h3_run.visits)
            ),
        )

    return CaseStudyResult(
        high=measure("C_H", high_pages),
        low=measure("C_L", low_pages),
        n_domains=len(domains),
        outliers_removed=len(pages) - len(kept),
    )
