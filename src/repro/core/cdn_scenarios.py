"""CDN hierarchy/economics sweeps: amplification, miss storms, flash crowds.

Three provider-side scenarios built on the tiered cache hierarchy and
compression negotiation (:mod:`repro.cdn.hierarchy` /
:mod:`repro.cdn.compression`), each a structural claim about CDN
economics rather than a client-side timing figure:

* **amplification** — the Lin et al. bandwidth-amplification shape: a
  client fleet that demands ``Accept-Encoding: identity`` for content
  the origin stores Brotli-compressed makes the edge decompress on
  egress, so the provider ships ~3.3x the bytes it ingested.  Swept
  over the fraction of identity-demanding clients; the egress/ingress
  factor must exceed 1 and grow monotonically with that fraction.
* **miss storm** — tier capacities shrink until nothing sticks: origin
  offload collapses and PLT degrades tier by tier as requests fall
  through ever more of the chain.
* **flash crowd** — a popularity-skewed burst against a small edge.  A
  flat cache thrashes straight to the origin; an edge→regional
  hierarchy absorbs the skew in the regional tier, cutting both origin
  bytes and PLT.

Every cell runs with identical seeds, so within a sweep the swept knob
is the only difference — the same discipline as
:mod:`repro.core.migration`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.cdn.compression import CompressionConfig
from repro.cdn.economics import EconomicsLedger
from repro.cdn.hierarchy import (
    DEFAULT_HIERARCHY,
    HierarchyConfig,
    TierSpec,
)
from repro.measurement.campaign import CampaignConfig
from repro.measurement.executor import MultiCampaignPlan, execute
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse

#: Identity-demand ratios swept by the amplification experiment.
DEFAULT_IDENTITY_RATIOS = (0.0, 0.5, 1.0)

#: Capacity squeeze levels for the miss-storm experiment, outermost
#: tier last.  ``warm`` is the default preset (everything fits);
#: ``squeezed`` starves the edge but lets the regional tier absorb;
#: ``storm`` starves both, so requests fall through to the origin.
MISS_STORM_LEVELS: dict[str, HierarchyConfig] = {
    "warm": DEFAULT_HIERARCHY,
    "squeezed": HierarchyConfig(
        tiers=(
            TierSpec(name="edge", capacity_bytes=32 * 1024, fetch_ms=25.0),
            TierSpec(
                name="regional",
                capacity_bytes=4 * 1024 * 1024 * 1024,
                fetch_ms=40.0,
            ),
        )
    ),
    "storm": HierarchyConfig(
        tiers=(
            TierSpec(name="edge", capacity_bytes=32 * 1024, fetch_ms=25.0),
            TierSpec(name="regional", capacity_bytes=48 * 1024, fetch_ms=40.0),
        )
    ),
}

#: Flash-crowd cells: a small flat edge vs the same edge backed by a
#: large regional tier.  A one-tier chain *is* a flat cache (the tier's
#: ``fetch_ms`` is the legacy origin-fetch penalty), which keeps the
#: two cells comparable knob for knob.
FLASH_CROWD_TOPOLOGIES: dict[str, HierarchyConfig] = {
    "flat": HierarchyConfig(
        tiers=(
            TierSpec(name="edge", capacity_bytes=256 * 1024, fetch_ms=60.0),
        )
    ),
    "hierarchy": HierarchyConfig(
        tiers=(
            TierSpec(name="edge", capacity_bytes=256 * 1024, fetch_ms=25.0),
            TierSpec(
                name="regional",
                capacity_bytes=4 * 1024 * 1024 * 1024,
                fetch_ms=40.0,
            ),
        )
    ),
}


@dataclass(frozen=True)
class EconomicsPoint:
    """One cell of a CDN economics sweep."""

    #: The swept knob's value for this cell (ratio name or level name).
    label: str
    #: Provider-side byte ledger rebuilt from the cell's counters.
    egress_bytes: int
    origin_bytes: int
    cache_served_bytes: int
    transfer_bytes: int
    conversions: int
    misses: int
    #: Tier name → chain hits (``cache.hits.<tier>`` counters).
    tier_hits: dict[str, int]
    #: Egress/ingress amplification factor (0.0 when nothing ingressed).
    amplification: float
    #: Fraction of egress the origin never saw.
    offload_ratio: float
    #: Mean PLT per protocol mode across paired visits.
    h2_mean_plt_ms: float
    h3_mean_plt_ms: float
    #: Paired visits measured in this cell.
    paired_visits: int


def _point_from_result(label: str, result, tier_names: Sequence[str]) -> EconomicsPoint:
    counters = result.counter_totals()
    ledger = EconomicsLedger.from_counters(counters.counter)
    tier_hits = {
        name: int(counters.counter(f"cache.hits.{name}"))
        for name in tier_names
        if counters.counter(f"cache.hits.{name}")
    }
    h2_plts = [pv.h2.plt_ms for pv in result.paired_visits]
    h3_plts = [pv.h3.plt_ms for pv in result.paired_visits]
    return EconomicsPoint(
        label=label,
        egress_bytes=ledger.egress_bytes,
        origin_bytes=ledger.origin_bytes,
        cache_served_bytes=ledger.cache_served_bytes,
        transfer_bytes=ledger.transfer_bytes,
        conversions=ledger.conversions,
        misses=ledger.misses,
        tier_hits=tier_hits,
        amplification=ledger.amplification,
        offload_ratio=ledger.offload_ratio,
        h2_mean_plt_ms=sum(h2_plts) / len(h2_plts) if h2_plts else 0.0,
        h3_mean_plt_ms=sum(h3_plts) / len(h3_plts) if h3_plts else 0.0,
        paired_visits=len(result.paired_visits),
    )


def _run_cells(
    universe: WebUniverse,
    configs: dict,
    pages: Sequence[Webpage] | None,
    workers: int,
    chunk_size: int | None,
    store,
    run_prefix: str | None,
    resume: bool,
):
    target_pages = tuple(pages if pages is not None else universe.pages)
    return execute(MultiCampaignPlan(
        universe=universe,
        configs=configs,
        pages=target_pages,
        workers=workers,
        chunk_size=chunk_size,
        store=store,
        run_prefix=run_prefix,
        resume=resume,
    ))


def amplification_sweep(
    universe: WebUniverse,
    identity_ratios: Sequence[float] = DEFAULT_IDENTITY_RATIOS,
    hierarchy: HierarchyConfig = DEFAULT_HIERARCHY,
    pages: Sequence[Webpage] | None = None,
    seed: int = 0,
    campaign_config: CampaignConfig | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    store=None,
    run_prefix: str | None = None,
    resume: bool = False,
) -> list[EconomicsPoint]:
    """One campaign per identity-demand ratio, compression on.

    The identity-demand decision is hash-derived per URL with *nested*
    accept sets across ratios (a URL that demands identity at ratio r
    still does at every r' > r), so the amplification factor is
    monotone in the ratio by construction — any non-monotonicity is a
    bookkeeping bug, which is exactly what the smoke gate checks.
    """
    base = campaign_config or CampaignConfig()
    configs = {}
    for ratio in identity_ratios:
        configs[f"ratio-{ratio:g}"] = replace(
            base,
            seed=seed,
            collect_counters=True,
            cache_hierarchy=hierarchy,
            compression=CompressionConfig(identity_request_ratio=ratio),
            # Cold caches, single visit: the double-visit protocol warms
            # everything, which zeroes origin ingress in the *measured*
            # visit and leaves the amplification factor undefined.  The
            # attack is an ingress-vs-egress story, so the sweep meters
            # the visit that actually pulls from the origin.
            visits_per_page=1,
            warm_popular=False,
        )
    results = _run_cells(
        universe, configs, pages, workers, chunk_size, store, run_prefix, resume
    )
    tier_names = [tier.name for tier in hierarchy.tiers]
    return [
        _point_from_result(f"ratio-{ratio:g}", results[f"ratio-{ratio:g}"], tier_names)
        for ratio in identity_ratios
    ]


def miss_storm_sweep(
    universe: WebUniverse,
    levels: dict[str, HierarchyConfig] | None = None,
    pages: Sequence[Webpage] | None = None,
    seed: int = 0,
    campaign_config: CampaignConfig | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    store=None,
    run_prefix: str | None = None,
    resume: bool = False,
) -> list[EconomicsPoint]:
    """One campaign per capacity-squeeze level (no compression)."""
    levels = levels if levels is not None else MISS_STORM_LEVELS
    base = campaign_config or CampaignConfig()
    configs = {
        label: replace(
            base, seed=seed, collect_counters=True, cache_hierarchy=hierarchy
        )
        for label, hierarchy in levels.items()
    }
    results = _run_cells(
        universe, configs, pages, workers, chunk_size, store, run_prefix, resume
    )
    return [
        _point_from_result(
            label, results[label], [tier.name for tier in hierarchy.tiers]
        )
        for label, hierarchy in levels.items()
    ]


def flash_crowd_sweep(
    universe: WebUniverse,
    topologies: dict[str, HierarchyConfig] | None = None,
    pages: Sequence[Webpage] | None = None,
    seed: int = 0,
    campaign_config: CampaignConfig | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    store=None,
    run_prefix: str | None = None,
    resume: bool = False,
) -> list[EconomicsPoint]:
    """Flat small edge vs the same edge backed by a regional tier."""
    topologies = topologies if topologies is not None else FLASH_CROWD_TOPOLOGIES
    base = campaign_config or CampaignConfig()
    configs = {
        label: replace(
            base, seed=seed, collect_counters=True, cache_hierarchy=hierarchy
        )
        for label, hierarchy in topologies.items()
    }
    results = _run_cells(
        universe, configs, pages, workers, chunk_size, store, run_prefix, resume
    )
    return [
        _point_from_result(
            label, results[label], [tier.name for tier in hierarchy.tiers]
        )
        for label, hierarchy in topologies.items()
    ]


# -- structural checks ---------------------------------------------------


def _by_label(points: Sequence[EconomicsPoint]) -> dict[str, EconomicsPoint]:
    return {point.label: point for point in points}


def amplification_exceeds_unity(points: Sequence[EconomicsPoint]) -> bool:
    """Every cell with identity-demanding clients egresses more bytes
    than the origin ingressed (the attack shape)."""
    attacked = [p for p in points if p.label != "ratio-0"]
    return bool(attacked) and all(p.amplification > 1.0 for p in attacked)


def amplification_monotone(points: Sequence[EconomicsPoint]) -> bool:
    """The amplification factor never decreases as the identity-demand
    ratio grows (nested accept sets make this exact, not statistical)."""
    factors = [p.amplification for p in points]
    return len(factors) >= 2 and all(
        a <= b + 1e-9 for a, b in zip(factors, factors[1:])
    )


def offload_collapses(points: Sequence[EconomicsPoint]) -> bool:
    """Origin offload collapses as tiers are squeezed.

    Offload never improves level by level and the fully starved chain
    is strictly worse than the warm one.  (The middle level may tie
    with ``warm`` at full offload — the regional tier can absorb the
    entire working set — which is itself part of the story: squeezing
    the edge alone pushes hits one tier out, not to the origin.)
    """
    cells = _by_label(points)
    if not {"warm", "squeezed", "storm"} <= cells.keys():
        return False
    warm, squeezed, storm = (
        cells["warm"].offload_ratio,
        cells["squeezed"].offload_ratio,
        cells["storm"].offload_ratio,
    )
    return warm >= squeezed >= storm and storm < warm


def plt_degrades_tier_by_tier(points: Sequence[EconomicsPoint]) -> bool:
    """Mean PLT worsens monotonically with each squeezed tier, in both
    protocol modes."""
    cells = _by_label(points)
    if not {"warm", "squeezed", "storm"} <= cells.keys():
        return False
    order = (cells["warm"], cells["squeezed"], cells["storm"])
    return all(
        a.h2_mean_plt_ms < b.h2_mean_plt_ms
        and a.h3_mean_plt_ms < b.h3_mean_plt_ms
        for a, b in zip(order, order[1:])
    )


def hierarchy_absorbs_flash_crowd(points: Sequence[EconomicsPoint]) -> bool:
    """The regional tier shields the origin: the hierarchy cell ships
    fewer origin bytes, loads faster, and actually records regional
    hits, while the flat cache thrashes straight through."""
    cells = _by_label(points)
    if not {"flat", "hierarchy"} <= cells.keys():
        return False
    flat, tiered = cells["flat"], cells["hierarchy"]
    return (
        tiered.origin_bytes < flat.origin_bytes
        and tiered.h2_mean_plt_ms < flat.h2_mean_plt_ms
        and tiered.h3_mean_plt_ms < flat.h3_mean_plt_ms
        and tiered.tier_hits.get("regional", 0) > 0
    )
