"""Migration sweep: QUIC connection migration vs TCP reconnect, by topology.

QUIC's connection IDs decouple a connection from its 4-tuple: when the
client's address changes mid-visit (a NAT rebinding, a Wi-Fi→cellular
handover), the connection *migrates* — the endpoints keep their state
and probe the new path — while TCP must tear down and reconnect, paying
a fresh handshake and losing in-flight requests.  This experiment asks
how much of H3's advantage that buys, and how path topology mediates
it:

* **direct** — the baseline client↔edge path.
* **connect-tunnel** — a CONNECT-style HTTP/2 proxy that terminates
  TCP.  QUIC cannot pass through, so the browser's "H3" lane downgrades
  to H2 at the proxy and *both* lanes reconnect on migration: the
  topology erases H3's migration edge entirely.
* **masque-relay** — a MASQUE-style UDP relay that forwards QUIC
  end-to-end.  H3 keeps its connection IDs and migrates; only the H2
  lane reconnects.

For each (topology, fault) cell one campaign runs with identical seeds,
so within a topology the fault profile is the only difference, and
within a fault the topology is.  The headline comparison: under a
migration fault only the MASQUE relay (and the direct path) record
QUIC migrations, while the CONNECT tunnel records none — every lane it
carries is TCP, so it both erases H3's migration story and zeroes the
H3 share outright.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.faults.presets import migration_profile
from repro.measurement.campaign import CampaignConfig
from repro.measurement.executor import MultiCampaignPlan, execute
from repro.netsim.proxy import PROXY_MODELS, ProxyConfig
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse

#: Path topologies swept by default: direct plus both proxy models.
DEFAULT_TOPOLOGIES = ("direct",) + PROXY_MODELS

#: Migration fault kinds swept by default ("none" = fault-free control).
DEFAULT_FAULTS = ("none", "nat_rebind")


@dataclass(frozen=True)
class MigrationPoint:
    """One (topology, fault) cell of the migration sweep."""

    #: ``"direct"``, ``"connect-tunnel"`` or ``"masque-relay"``.
    topology: str
    #: ``"none"``, ``"nat_rebind"`` or ``"wifi_to_cellular"``.
    fault: str
    #: Mean PLT per mode across paired visits.
    h2_mean_plt_ms: float
    h3_mean_plt_ms: float
    #: Mean PLT_H2 − PLT_H3 (positive ⇒ H3 wins).
    mean_plt_reduction_ms: float
    #: QUIC connections that survived the address change by migrating.
    quic_migrations: int
    #: TCP connections torn down and re-established instead.
    migration_reconnects: int
    #: H3 fetches downgraded at a CONNECT tunnel.
    proxy_h3_downgrades: int
    #: Fraction of H3-eligible fetches actually served over H3
    #: (in the H3-enabled mode).
    h3_share: float
    #: Paired visits where fault recovery degraded either mode.
    degraded_visits: int
    #: Visits that failed outright.
    failed_visits: int
    #: Paired visits measured in this cell.
    paired_visits: int


def _proxy_for(topology: str) -> ProxyConfig | None:
    if topology == "direct":
        return None
    return ProxyConfig(model=topology)


def migration_sweep(
    universe: WebUniverse,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    fault_kinds: Sequence[str] = DEFAULT_FAULTS,
    pages: Sequence[Webpage] | None = None,
    seed: int = 0,
    campaign_config: CampaignConfig | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    store=None,
    run_prefix: str | None = None,
    resume: bool = False,
) -> list[MigrationPoint]:
    """Run the fig-migration experiment: one campaign per cell.

    All cells share one worker pool and one seed; only the proxy config
    and fault profile vary.  Counters are forced on — the migration
    verdict (migrated vs reconnected) lives in the pool's counters, not
    in PLT alone.
    """
    target_pages = tuple(pages if pages is not None else universe.pages)
    base = campaign_config or CampaignConfig()
    configs = {}
    for topology in topologies:
        if topology not in DEFAULT_TOPOLOGIES:
            raise ValueError(
                f"unknown topology {topology!r}; known: {DEFAULT_TOPOLOGIES}"
            )
        for kind in fault_kinds:
            configs[(topology, kind)] = replace(
                base,
                seed=seed,
                collect_counters=True,
                proxy=_proxy_for(topology),
                fault_profile=(
                    migration_profile(kind) if kind != "none" else None
                ),
            )
    results = execute(MultiCampaignPlan(
        universe=universe,
        configs=configs,
        pages=target_pages,
        workers=workers,
        chunk_size=chunk_size,
        store=store,
        run_prefix=run_prefix,
        resume=resume,
    ))
    points: list[MigrationPoint] = []
    for (topology, kind), result in (
        ((t, k), results[(t, k)]) for t in topologies for k in fault_kinds
    ):
        eligible = 0
        over_h3 = 0
        for entry in result.entries("h3-enabled"):
            host_spec = universe.hosts.get(entry.host)
            if host_spec is None or not host_spec.supports_h3:
                continue
            eligible += 1
            if entry.protocol == "h3":
                over_h3 += 1
        counters = result.counter_totals()
        h2_plts = [pv.h2.plt_ms for pv in result.paired_visits]
        h3_plts = [pv.h3.plt_ms for pv in result.paired_visits]
        reductions = [pv.plt_reduction_ms for pv in result.paired_visits]
        points.append(
            MigrationPoint(
                topology=topology,
                fault=kind,
                h2_mean_plt_ms=sum(h2_plts) / len(h2_plts) if h2_plts else 0.0,
                h3_mean_plt_ms=sum(h3_plts) / len(h3_plts) if h3_plts else 0.0,
                mean_plt_reduction_ms=(
                    sum(reductions) / len(reductions) if reductions else 0.0
                ),
                quic_migrations=int(counters.counter("pool.quic_migrations")),
                migration_reconnects=int(
                    counters.counter("pool.migration_reconnects")
                ),
                proxy_h3_downgrades=int(
                    counters.counter("pool.proxy_h3_downgrades")
                ),
                h3_share=over_h3 / eligible if eligible else 0.0,
                degraded_visits=len(result.degraded_visits()),
                failed_visits=len(result.failures),
                paired_visits=len(result.paired_visits),
            )
        )
    return points


def _cell(points: Sequence[MigrationPoint], topology: str, fault: str):
    for point in points:
        if point.topology == topology and point.fault == fault:
            return point
    return None


def tunnel_erases_migration_edge(points: Sequence[MigrationPoint]) -> bool:
    """The headline check: a CONNECT tunnel records zero QUIC
    migrations under a migration fault (every lane is TCP), while the
    MASQUE relay records at least one."""
    tunnel = [
        p for p in points
        if p.topology == "connect-tunnel" and p.fault != "none"
    ]
    relay = [
        p for p in points
        if p.topology == "masque-relay" and p.fault != "none"
    ]
    if not tunnel or not relay:
        return False
    return all(p.quic_migrations == 0 for p in tunnel) and all(
        p.quic_migrations > 0 for p in relay
    )


def tunnel_downgrades_h3(points: Sequence[MigrationPoint]) -> bool:
    """Every connect-tunnel cell serves no H3 at all (the proxy
    terminates TCP, so the H3 lane runs H2 end to end)."""
    cells = [p for p in points if p.topology == "connect-tunnel"]
    return bool(cells) and all(
        p.h3_share == 0.0 and p.proxy_h3_downgrades > 0 for p in cells
    )
