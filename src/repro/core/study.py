"""One-stop orchestration of the full reproduction study.

:class:`H3CdnStudy` is the public API most users want: configure scale
once, then ask for any table or figure.  Expensive stages (universe
generation, the paired campaign, the consecutive walk, the loss sweep)
run lazily and are cached on the instance, so asking for Fig. 6 and
Fig. 7 shares one campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.analysis.stats import EmpiricalDistribution
from repro.core import adoption as adoption_mod
from repro.core import characteristics as characteristics_mod
from repro.core import cdn_scenarios as cdn_scenarios_mod
from repro.core import congestion as congestion_mod
from repro.core import fallback as fallback_mod
from repro.core import groups as groups_mod
from repro.core import migration as migration_mod
from repro.core import reuse as reuse_mod
from repro.core import sharing as sharing_mod
from repro.core.adoption import AdoptionTable, ProviderAdoption
from repro.core.cdn_scenarios import EconomicsPoint
from repro.core.congestion import LossSweepSeries
from repro.core.fallback import FallbackSweepPoint
from repro.core.migration import MigrationPoint
from repro.core.sharing import CaseStudyResult
from repro.measurement.campaign import CampaignConfig, CampaignResult
from repro.measurement.consecutive import ConsecutiveRun
from repro.measurement.executor import CampaignPlan, ConsecutivePlan, execute
from repro.web.page import Webpage
from repro.web.topsites import GeneratorConfig, WebUniverse, cached_universe


@dataclass(frozen=True)
class StudyConfig:
    """Scale and seeding for one full study run.

    The defaults reproduce the paper at full scale (325 sites).  For
    tests and quick benches, shrink ``n_sites`` and cap the per-
    experiment page counts.
    """

    n_sites: int = 325
    seed: int = 7
    generator_config: GeneratorConfig | None = None
    campaign_config: CampaignConfig = field(default_factory=CampaignConfig)
    #: Loss rates for the Fig. 9 sweep.
    loss_rates: tuple[float, ...] = congestion_mod.DEFAULT_LOSS_RATES
    #: Page-count caps per experiment (None = all pages).
    max_campaign_pages: int | None = None
    max_consecutive_pages: int | None = None
    max_loss_sweep_pages: int | None = None
    #: Repetitions for the loss sweep (loss is stochastic).
    loss_sweep_repetitions: int = 1
    #: Fault intensities for the fallback sweep (fraction of hosts
    #: whose UDP is blackholed).
    fallback_intensities: tuple[float, ...] = fallback_mod.DEFAULT_INTENSITIES
    #: Path topologies for the migration sweep.
    migration_topologies: tuple[str, ...] = migration_mod.DEFAULT_TOPOLOGIES
    #: Fault kinds for the migration sweep ("none" = control).
    migration_faults: tuple[str, ...] = migration_mod.DEFAULT_FAULTS
    #: Identity-demand ratios for the amplification sweep.
    amplification_ratios: tuple[float, ...] = (
        cdn_scenarios_mod.DEFAULT_IDENTITY_RATIOS
    )
    #: Worker processes for the campaign and loss sweep (1 = in-process).
    workers: int = 1
    #: Result store for replay/resume (``None`` = no persistence).  A
    #: live :class:`~repro.store.ResultStore`; excluded from equality so
    #: configs still compare by their scientific content.
    store: "object | None" = field(default=None, compare=False)
    #: Base name for this study's runs in the store (each stage appends
    #: its own suffix, e.g. ``<run_name>/campaign``).
    run_name: str = "study"
    #: Continue interrupted runs of the same name instead of restarting.
    resume: bool = False

    def resolved_generator_config(self) -> GeneratorConfig:
        if self.generator_config is not None:
            return self.generator_config
        return GeneratorConfig(n_sites=self.n_sites)


class H3CdnStudy:
    """The full reproduction, lazily evaluated and cached."""

    def __init__(self, config: StudyConfig | None = None) -> None:
        self.config = config or StudyConfig()
        self._universe: WebUniverse | None = None
        self._campaign_result: CampaignResult | None = None
        self._consecutive: tuple[ConsecutiveRun, ConsecutiveRun] | None = None
        self._loss_sweep: list[LossSweepSeries] | None = None
        self._fallback_sweep: list[FallbackSweepPoint] | None = None
        self._migration_sweep: list[MigrationPoint] | None = None
        self._case_study: CaseStudyResult | None = None
        self._amplification: list[EconomicsPoint] | None = None
        self._miss_storm: list[EconomicsPoint] | None = None
        self._flash_crowd: list[EconomicsPoint] | None = None

    # -- cached stages ---------------------------------------------------

    @property
    def universe(self) -> WebUniverse:
        """The synthetic top-site universe (generated on first use)."""
        if self._universe is None:
            self._universe = cached_universe(
                self.config.resolved_generator_config(), seed=self.config.seed
            )
        return self._universe

    def _pages(self, cap: int | None) -> tuple[Webpage, ...]:
        pages = self.universe.pages
        return pages if cap is None else pages[:cap]

    @property
    def campaign_result(self) -> CampaignResult:
        """The paired H2/H3 campaign (runs on first use)."""
        if self._campaign_result is None:
            self._campaign_result = execute(CampaignPlan(
                universe=self.universe,
                sim=self.config.campaign_config,
                pages=self._pages(self.config.max_campaign_pages),
                workers=self.config.workers,
                store=self.config.store,
                run_name=(
                    f"{self.config.run_name}/campaign"
                    if self.config.store is not None
                    else None
                ),
                resume=self.config.resume,
            ))
        return self._campaign_result

    def campaign_result_or_none(self) -> CampaignResult | None:
        """The campaign result if it has already been materialized.

        Unlike :attr:`campaign_result` this never triggers the run —
        observability consumers (the CLI's ``--counters`` / trace
        export) use it to read telemetry only from campaigns that some
        experiment actually executed.
        """
        return self._campaign_result

    @property
    def consecutive_runs(self) -> tuple[ConsecutiveRun, ConsecutiveRun]:
        """(H2 walk, H3 walk) over the ordered page list."""
        if self._consecutive is None:
            store = self.config.store
            run_name = None
            if store is not None:
                from repro.store.keys import campaign_config_hash

                run_name = f"{self.config.run_name}/consecutive"
                store.begin_run(
                    run_name,
                    config_hash=campaign_config_hash(self.config.campaign_config),
                    resume=self.config.resume,
                )
            self._consecutive = execute(ConsecutivePlan(
                universe=self.universe,
                pages=tuple(self._pages(self.config.max_consecutive_pages)),
                seed=self.config.seed,
                strict=self.config.campaign_config.strict,
                store=store,
                run_name=run_name,
            ))
            if store is not None and run_name is not None:
                # The journal holds both walks' keys in completion
                # order (deduped in case a resume re-journaled one).
                store.finish_run(
                    run_name, list(dict.fromkeys(store.journal_keys(run_name)))
                )
        return self._consecutive

    # -- Section IV: adoption --------------------------------------------

    def table2(self) -> AdoptionTable:
        """Table II: requests by HTTP version × CDN/non-CDN."""
        return adoption_mod.adoption_table(
            self.campaign_result.entries("h3-enabled")
        )

    def fig2(self) -> list[ProviderAdoption]:
        """Fig. 2: per-provider H3/H2 request counts."""
        return adoption_mod.provider_adoption(
            self.campaign_result.entries("h3-enabled")
        )

    # -- Section V: characteristics ---------------------------------------

    def fig3(self) -> EmpiricalDistribution:
        """Fig. 3: CCDF of per-page CDN fraction."""
        return characteristics_mod.cdn_fraction_ccdf(self.universe.pages)

    def fig4a(self) -> dict[str, float]:
        """Fig. 4(a): provider appearance probability."""
        return characteristics_mod.provider_page_probability(self.universe.pages)

    def fig4b(self) -> dict[int, int]:
        """Fig. 4(b): pages per provider count."""
        return characteristics_mod.pages_by_provider_count(self.universe.pages)

    def fig5(self, providers: Sequence[str] = ("amazon", "cloudflare", "google", "fastly")):
        """Fig. 5: per-provider CCDF of resources per page."""
        return {
            name: characteristics_mod.provider_resource_ccdf(self.universe.pages, name)
            for name in providers
        }

    # -- Section VI-B/C: groups and reuse ----------------------------------

    def fig6a(self):
        """Fig. 6(a): PLT reduction per quartile group."""
        return groups_mod.plt_reduction_by_group(self.campaign_result)

    def fig6b(self) -> dict[str, EmpiricalDistribution]:
        """Fig. 6(b): CDFs of phase reductions."""
        return groups_mod.phase_reduction_distributions(self.campaign_result)

    def fig7a(self):
        """Fig. 7(a)/(b): reused connections per group."""
        return reuse_mod.reused_counts_by_group(self.campaign_result)

    def fig7c(self, n_bins: int = 5):
        """Fig. 7(c): PLT reduction vs reuse difference."""
        return reuse_mod.plt_reduction_by_reuse_difference(
            self.campaign_result, n_bins=n_bins
        )

    # -- Section VI-D: sharing ---------------------------------------------

    def fig8a(self) -> dict[int, float]:
        """Fig. 8(a): PLT reduction vs number of used providers."""
        h2_run, h3_run = self.consecutive_runs
        return sharing_mod.plt_reduction_by_provider_count(
            h2_run, h3_run, self._pages(self.config.max_consecutive_pages)
        )

    def fig8b(self) -> dict[int, float]:
        """Fig. 8(b): resumed connections vs number of used providers."""
        __, h3_run = self.consecutive_runs
        return sharing_mod.resumed_by_provider_count(
            h3_run, self._pages(self.config.max_consecutive_pages)
        )

    def table3(self) -> CaseStudyResult:
        """Table III: the high-/low-sharing case study."""
        if self._case_study is None:
            self._case_study = sharing_mod.case_study(
                self.universe,
                pages=self._pages(self.config.max_consecutive_pages),
                seed=self.config.seed,
                strict=self.config.campaign_config.strict,
            )
        return self._case_study

    # -- Section VI-E: congestion -------------------------------------------

    def fig9(self) -> list[LossSweepSeries]:
        """Fig. 9: the loss sweep with fitted slopes."""
        if self._loss_sweep is None:
            self._loss_sweep = congestion_mod.loss_sweep(
                self.universe,
                loss_rates=self.config.loss_rates,
                pages=self._pages(self.config.max_loss_sweep_pages),
                seed=self.config.seed,
                repetitions=self.config.loss_sweep_repetitions,
                campaign_config=self.config.campaign_config,
                workers=self.config.workers,
                store=self.config.store,
                run_prefix=(
                    f"{self.config.run_name}/fig9"
                    if self.config.store is not None
                    else None
                ),
                resume=self.config.resume,
            )
        return self._loss_sweep

    # -- fault injection: fallback ------------------------------------------

    def fig_fallback(
        self, intensities: Sequence[float] | None = None
    ) -> list[FallbackSweepPoint]:
        """The fallback sweep: H3's edge under rising UDP blackholing.

        Only the default-intensity call is cached; an explicit
        ``intensities`` argument always runs fresh.
        """
        if intensities is not None:
            return fallback_mod.fallback_sweep(
                self.universe,
                intensities=tuple(intensities),
                pages=self._pages(self.config.max_loss_sweep_pages),
                seed=self.config.seed,
                campaign_config=self.config.campaign_config,
                workers=self.config.workers,
            )
        if self._fallback_sweep is None:
            self._fallback_sweep = fallback_mod.fallback_sweep(
                self.universe,
                intensities=self.config.fallback_intensities,
                pages=self._pages(self.config.max_loss_sweep_pages),
                seed=self.config.seed,
                campaign_config=self.config.campaign_config,
                workers=self.config.workers,
                store=self.config.store,
                run_prefix=(
                    f"{self.config.run_name}/fig-fallback"
                    if self.config.store is not None
                    else None
                ),
                resume=self.config.resume,
            )
        return self._fallback_sweep

    # -- proxy topologies: migration ----------------------------------------

    def fig_migration(
        self,
        topologies: Sequence[str] | None = None,
        fault_kinds: Sequence[str] | None = None,
    ) -> list[MigrationPoint]:
        """The migration sweep: QUIC migration vs TCP reconnect across
        direct/tunnel/relay topologies.

        Only the default call is cached; explicit ``topologies`` or
        ``fault_kinds`` always run fresh.
        """
        if topologies is not None or fault_kinds is not None:
            return migration_mod.migration_sweep(
                self.universe,
                topologies=tuple(
                    topologies
                    if topologies is not None
                    else self.config.migration_topologies
                ),
                fault_kinds=tuple(
                    fault_kinds
                    if fault_kinds is not None
                    else self.config.migration_faults
                ),
                pages=self._pages(self.config.max_loss_sweep_pages),
                seed=self.config.seed,
                campaign_config=self.config.campaign_config,
                workers=self.config.workers,
            )
        if self._migration_sweep is None:
            self._migration_sweep = migration_mod.migration_sweep(
                self.universe,
                topologies=self.config.migration_topologies,
                fault_kinds=self.config.migration_faults,
                pages=self._pages(self.config.max_loss_sweep_pages),
                seed=self.config.seed,
                campaign_config=self.config.campaign_config,
                workers=self.config.workers,
                store=self.config.store,
                run_prefix=(
                    f"{self.config.run_name}/fig-migration"
                    if self.config.store is not None
                    else None
                ),
                resume=self.config.resume,
            )
        return self._migration_sweep

    # -- CDN hierarchy: economics scenarios ---------------------------------

    def fig_amplification(
        self, identity_ratios: Sequence[float] | None = None
    ) -> list[EconomicsPoint]:
        """The amplification sweep: identity-demanding clients vs a
        Brotli-storing origin (egress/ingress factor by demand ratio).

        Only the default-ratio call is cached; an explicit
        ``identity_ratios`` argument always runs fresh.
        """
        if identity_ratios is not None:
            return cdn_scenarios_mod.amplification_sweep(
                self.universe,
                identity_ratios=tuple(identity_ratios),
                pages=self._pages(self.config.max_loss_sweep_pages),
                seed=self.config.seed,
                campaign_config=self.config.campaign_config,
                workers=self.config.workers,
            )
        if self._amplification is None:
            self._amplification = cdn_scenarios_mod.amplification_sweep(
                self.universe,
                identity_ratios=self.config.amplification_ratios,
                pages=self._pages(self.config.max_loss_sweep_pages),
                seed=self.config.seed,
                campaign_config=self.config.campaign_config,
                workers=self.config.workers,
                store=self.config.store,
                run_prefix=(
                    f"{self.config.run_name}/fig-amplification"
                    if self.config.store is not None
                    else None
                ),
                resume=self.config.resume,
            )
        return self._amplification

    def fig_miss_storm(self) -> list[EconomicsPoint]:
        """The miss-storm sweep: offload collapse under tier squeeze."""
        if self._miss_storm is None:
            self._miss_storm = cdn_scenarios_mod.miss_storm_sweep(
                self.universe,
                pages=self._pages(self.config.max_loss_sweep_pages),
                seed=self.config.seed,
                campaign_config=self.config.campaign_config,
                workers=self.config.workers,
                store=self.config.store,
                run_prefix=(
                    f"{self.config.run_name}/fig-miss-storm"
                    if self.config.store is not None
                    else None
                ),
                resume=self.config.resume,
            )
        return self._miss_storm

    def fig_flash_crowd(self) -> list[EconomicsPoint]:
        """The flash-crowd comparison: flat cache vs tier hierarchy."""
        if self._flash_crowd is None:
            self._flash_crowd = cdn_scenarios_mod.flash_crowd_sweep(
                self.universe,
                pages=self._pages(self.config.max_loss_sweep_pages),
                seed=self.config.seed,
                campaign_config=self.config.campaign_config,
                workers=self.config.workers,
                store=self.config.store,
                run_prefix=(
                    f"{self.config.run_name}/fig-flash-crowd"
                    if self.config.store is not None
                    else None
                ),
                resume=self.config.resume,
            )
        return self._flash_crowd

    # ------------------------------------------------------------------

    def scaled(self, **overrides) -> "H3CdnStudy":
        """A new study with config fields replaced (nothing shared)."""
        return H3CdnStudy(replace(self.config, **overrides))
