"""Observability: qlog-style tracing, metrics, spans, and run manifests.

This package is the simulator's telemetry layer:

* :mod:`repro.obs.trace` — per-connection event tracers (qlog-inspired)
  with a zero-cost null tracer for the disabled case,
* :mod:`repro.obs.counters` — counters/gauges/histograms with
  deterministic cross-worker merging,
* :mod:`repro.obs.metrics` — sim-time metrics samplers (cwnd, RTT,
  goodput, queue depth) with the same zero-cost null pattern,
* :mod:`repro.obs.spans` — hierarchical visit/phase/transfer spans,
* :mod:`repro.obs.progress` — live wall-clock campaign progress,
* :mod:`repro.obs.context` — the :class:`ObsContext` threaded through
  probes, browsers, pools and transports,
* :mod:`repro.obs.schema` — the JSONL telemetry schema and validator,
* :mod:`repro.obs.export` — qlog 0.3 and Perfetto exporters,
* :mod:`repro.obs.manifest` — ``run.json`` provenance manifests.

Everything here is strictly *observational*: with an ``ObsContext``
attached or not, simulation results are bit-identical.
"""

from repro.obs.context import ObsContext
from repro.obs.counters import CounterRegistry, Histogram, merge_counter_dicts
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    build_run_manifest,
    read_run_manifest,
    write_run_manifest,
)
from repro.obs.metrics import (
    NULL_SAMPLER,
    ConnectionSampler,
    LinkSampler,
    NullSampler,
    timeseries,
)
from repro.obs.progress import ProgressReporter
from repro.obs.spans import SPAN_KINDS, SpanRecorder
from repro.obs.trace import EVENT_NAMES, NULL_TRACER, ConnectionTracer, NullTracer

#: Schema/export names are re-exported lazily (PEP 562) so that running
#: ``python -m repro.obs.schema`` / ``python -m repro.obs.export`` does
#: not import those modules twice (once via this package, once via
#: runpy).
_SCHEMA_EXPORTS = (
    "TraceSchemaError",
    "validate_event",
    "validate_record",
    "validate_span",
    "validate_jsonl",
)
_EXPORT_EXPORTS = ("to_qlog", "spans_to_trace_events")


def __getattr__(name: str):
    if name in _SCHEMA_EXPORTS:
        from repro.obs import schema

        return getattr(schema, name)
    if name in _EXPORT_EXPORTS:
        from repro.obs import export

        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ObsContext",
    "CounterRegistry",
    "Histogram",
    "merge_counter_dicts",
    "ConnectionTracer",
    "NullTracer",
    "NULL_TRACER",
    "EVENT_NAMES",
    "ConnectionSampler",
    "LinkSampler",
    "NullSampler",
    "NULL_SAMPLER",
    "timeseries",
    "SpanRecorder",
    "SPAN_KINDS",
    "ProgressReporter",
    "TraceSchemaError",
    "validate_event",
    "validate_record",
    "validate_span",
    "validate_jsonl",
    "to_qlog",
    "spans_to_trace_events",
    "MANIFEST_FORMAT",
    "build_run_manifest",
    "read_run_manifest",
    "write_run_manifest",
]
