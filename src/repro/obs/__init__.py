"""Observability: qlog-style tracing, metrics, and run manifests.

This package is the simulator's telemetry layer:

* :mod:`repro.obs.trace` — per-connection event tracers (qlog-inspired)
  with a zero-cost null tracer for the disabled case,
* :mod:`repro.obs.counters` — counters/gauges/histograms with
  deterministic cross-worker merging,
* :mod:`repro.obs.context` — the :class:`ObsContext` threaded through
  probes, browsers, pools and transports,
* :mod:`repro.obs.schema` — the JSONL trace schema and validator,
* :mod:`repro.obs.manifest` — ``run.json`` provenance manifests.

Everything here is strictly *observational*: with an ``ObsContext``
attached or not, simulation results are bit-identical.
"""

from repro.obs.context import ObsContext
from repro.obs.counters import CounterRegistry, Histogram, merge_counter_dicts
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    build_run_manifest,
    read_run_manifest,
    write_run_manifest,
)
from repro.obs.trace import EVENT_NAMES, NULL_TRACER, ConnectionTracer, NullTracer

#: Schema names are re-exported lazily (PEP 562) so that running the
#: validator as ``python -m repro.obs.schema`` does not import the
#: module twice (once via this package, once via runpy).
_SCHEMA_EXPORTS = ("TraceSchemaError", "validate_event", "validate_jsonl")


def __getattr__(name: str):
    if name in _SCHEMA_EXPORTS:
        from repro.obs import schema

        return getattr(schema, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ObsContext",
    "CounterRegistry",
    "Histogram",
    "merge_counter_dicts",
    "ConnectionTracer",
    "NullTracer",
    "NULL_TRACER",
    "EVENT_NAMES",
    "TraceSchemaError",
    "validate_event",
    "validate_jsonl",
    "MANIFEST_FORMAT",
    "build_run_manifest",
    "read_run_manifest",
    "write_run_manifest",
]
