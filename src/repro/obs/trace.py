"""qlog-inspired per-connection event tracing.

Real QUIC measurement studies standardize on qlog endpoint traces
(draft-ietf-quic-qlog); this module is the simulator's analogue.  A
:class:`ConnectionTracer` records timestamped events — packets sent,
acked and lost, cwnd updates, PTO fires, handshake phase transitions,
0-RTT decisions, stream opens/closes, and head-of-line-blocking stall
intervals — for exactly one simulated connection.

When tracing is disabled the transports hold the falsy
:data:`NULL_TRACER` singleton, and every instrumentation point is
guarded with ``if self.tracer:`` — the disabled cost is one attribute
load and a boolean check, never a method call or an allocation.  That
is what keeps tracer-off campaigns bit-identical and within the <5%
overhead budget.
"""

from __future__ import annotations

#: Every event name a tracer may emit (the JSONL schema's closed set).
#: Names follow qlog's ``category:event`` convention.
EVENT_NAMES: frozenset[str] = frozenset(
    {
        "transport:handshake_started",
        "transport:handshake_flight",
        "transport:handshake_completed",
        "recovery:handshake_timeout",
        "transport:packet_sent",
        "transport:packet_received",
        "transport:packet_acked",
        "transport:packet_lost",
        "transport:hol_stall_started",
        "transport:hol_stall_ended",
        "recovery:metrics_updated",
        "recovery:pto_fired",
        "security:session_ticket_hit",
        "security:session_ticket_miss",
        "security:session_ticket_rejected",
        "security:zero_rtt_accepted",
        "http:stream_opened",
        "http:stream_closed",
        # Fault-injection events (repro.faults): one per injected fault.
        "fault:blackout",
        "fault:udp_blackhole",
        "fault:edge_outage",
        "fault:dns_failure",
        "fault:connection_reset",
        "fault:zero_rtt_reject",
        "fault:nat_rebind",
        "fault:wifi_to_cellular",
        # Connection-migration outcomes: QUIC carries the connection
        # across the address change; TCP must tear down and reconnect.
        "migration:migrated",
        "migration:reconnect",
        # Proxy topology events (repro.netsim.proxy): a CONNECT-style
        # tunnel downgrading a client's H3 attempt to H2.
        "proxy:h3_downgrade",
        # Client-side recovery actions taken in response to faults.
        "recovery:h3_fallback",
        "recovery:connect_timeout",
        "recovery:connect_retry",
        "recovery:request_timeout",
        "recovery:request_retry",
        "recovery:request_failed",
        "recovery:dns_retry",
        # Sim-time metrics samples (repro.obs.metrics): periodic
        # transport / link timeseries, same JSONL record shape.
        "metrics:transport_sample",
        "metrics:link_sample",
        # CDN cache-hierarchy events (repro.cdn.hierarchy): where in the
        # tier chain each request was answered.
        "cache:hit",
        "cache:miss",
        # Provider-side byte accounting (repro.cdn.economics).
        "economics:egress",
        "economics:origin_fetch",
    }
)


# Shared key tuples for the preallocated record shapes the specialized
# hot-path methods emit.  One module-level constant per shape keeps the
# per-event allocation to exactly one values tuple — the kwargs dict and
# the per-record dict the generic ``event`` path pays are deferred to
# export time (``events`` / ``tagged_events``), where they are built
# once per drain instead of once per packet.
_SENT_KEYS = ("seq", "size", "dir", "retransmission")
_RECV_KEYS = ("seq", "size", "retransmission")
_ACK_KEYS = ("seq",)
_LOST_KEYS = ("seq", "trigger")
_METRICS_KEYS = ("cwnd", "ssthresh", "bytes_in_flight")


class NullTracer:
    """The do-nothing, falsy tracer installed when tracing is off.

    Falsiness is the contract: hot paths guard with ``if self.tracer:``
    so a disabled connection never even enters the tracing call.  The
    no-op methods keep unguarded (cold-path) call sites safe.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def event(self, time: float, name: str, **data) -> None:
        pass

    def packet_sent(self, time, seq, size, direction, retransmission) -> None:
        pass

    def packet_received(self, time, seq, size, retransmission) -> None:
        pass

    def packet_acked(self, time, seq) -> None:
        pass

    def packet_lost(self, time, seq, trigger) -> None:
        pass

    def metrics_updated(self, time, cwnd, ssthresh, bytes_in_flight) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullTracer>"


#: Shared singleton; there is never a reason to allocate more than one.
NULL_TRACER = NullTracer()


class ConnectionTracer:
    """Event recorder for one connection (one qlog trace).

    Events are appended in simulation-callback order, which the
    deterministic event loop makes reproducible run to run.

    Records are held as flat ``(time, name, keys, *values)`` tuples —
    ``keys`` is a shared constant tuple naming the trailing values for
    the specialized packet-rate methods, or ``None`` when the fourth
    element is already the data dict from the generic :meth:`event`
    path.  Dict materialization happens at export time, off the
    simulation hot path.
    """

    __slots__ = ("name", "protocol", "_records")

    def __init__(self, name: str, protocol: str) -> None:
        self.name = name
        self.protocol = protocol
        self._records: list[tuple] = []

    def __bool__(self) -> bool:
        return True

    # -- recording (hot) -----------------------------------------------

    def event(self, time: float, name: str, **data) -> None:
        """Record one event at simulated time ``time`` (ms)."""
        self._records.append((time, name, None, data))

    # The specialized recorders flatten the field values INTO the record
    # tuple (one allocation per event, no nested values tuple): traced
    # campaigns allocate millions of records, and halving the container
    # allocations halves the cyclic-GC collections they trigger.

    def packet_sent(self, time, seq, size, direction, retransmission) -> None:
        self._records.append(
            (time, "transport:packet_sent", _SENT_KEYS,
             seq, size, direction, retransmission)
        )

    def packet_received(self, time, seq, size, retransmission) -> None:
        self._records.append(
            (time, "transport:packet_received", _RECV_KEYS,
             seq, size, retransmission)
        )

    def packet_acked(self, time, seq) -> None:
        self._records.append(
            (time, "transport:packet_acked", _ACK_KEYS, seq)
        )

    def packet_lost(self, time, seq, trigger) -> None:
        self._records.append(
            (time, "transport:packet_lost", _LOST_KEYS, seq, trigger)
        )

    def metrics_updated(self, time, cwnd, ssthresh, bytes_in_flight) -> None:
        self._records.append(
            (time, "recovery:metrics_updated", _METRICS_KEYS,
             cwnd, ssthresh, bytes_in_flight)
        )

    # -- export (drain time) -------------------------------------------

    @property
    def events(self) -> list[dict]:
        """Materialized ``{"time", "name", "data"}`` view of the trace."""
        return [
            {
                "time": record[0],
                "name": record[1],
                "data": (
                    dict(zip(record[2], record[3:]))
                    if record[2] is not None
                    else record[3]
                ),
            }
            for record in self._records
        ]

    def count(self, name: str) -> int:
        """Number of recorded events with the given name."""
        return sum(1 for record in self._records if record[1] == name)

    def tagged_events(self) -> list[dict]:
        """Events with the connection context folded in (export form)."""
        conn = self.name
        protocol = self.protocol
        return [
            {
                "conn": conn,
                "protocol": protocol,
                "time": record[0],
                "name": record[1],
                "data": (
                    dict(zip(record[2], record[3:]))
                    if record[2] is not None
                    else record[3]
                ),
            }
            for record in self._records
        ]

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConnectionTracer {self.name} events={len(self._records)}>"


class TraceLog:
    """Lazy, list-of-dicts-compatible view over drained trace records.

    ``ObsContext.drain_visit`` hands each :class:`PageVisit` one of
    these instead of an eagerly materialized event list: the compact
    record tuples are kept as-is (zero per-event work at drain time) and
    the ``{"conn", "protocol", "time", "name", "data"}`` export dicts
    are built once, on first iteration/indexing — which for tracer-on
    throughput runs that never read the trace means *never*.  A visit
    that crosses a process or store boundary materializes in
    ``PageVisit.to_dict`` and arrives on the other side as the plain
    list this class is interchangeable with.
    """

    __slots__ = ("_tracers", "_flat")

    def __init__(self, tracers: list[ConnectionTracer]) -> None:
        # Hold the tracer objects (detached from their ObsContext by
        # drain), not copies: their record lists are no longer growing.
        self._tracers = list(tracers)
        self._flat: list[dict] | None = None

    def _materialize(self) -> list[dict]:
        flat = self._flat
        if flat is None:
            flat = []
            for tracer in self._tracers:
                flat.extend(tracer.tagged_events())
            self._flat = flat
        return flat

    def __len__(self) -> int:
        if self._flat is not None:
            return len(self._flat)
        return sum(len(tracer) for tracer in self._tracers)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, TraceLog):
            return self._materialize() == other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    def to_jsonable(self) -> list[dict]:
        """The materialized plain-list form (for HAR/store documents)."""
        return self._materialize()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceLog events={len(self)}>"
