"""qlog-inspired per-connection event tracing.

Real QUIC measurement studies standardize on qlog endpoint traces
(draft-ietf-quic-qlog); this module is the simulator's analogue.  A
:class:`ConnectionTracer` records timestamped events — packets sent,
acked and lost, cwnd updates, PTO fires, handshake phase transitions,
0-RTT decisions, stream opens/closes, and head-of-line-blocking stall
intervals — for exactly one simulated connection.

When tracing is disabled the transports hold the falsy
:data:`NULL_TRACER` singleton, and every instrumentation point is
guarded with ``if self.tracer:`` — the disabled cost is one attribute
load and a boolean check, never a method call or an allocation.  That
is what keeps tracer-off campaigns bit-identical and within the <5%
overhead budget.
"""

from __future__ import annotations

#: Every event name a tracer may emit (the JSONL schema's closed set).
#: Names follow qlog's ``category:event`` convention.
EVENT_NAMES: frozenset[str] = frozenset(
    {
        "transport:handshake_started",
        "transport:handshake_flight",
        "transport:handshake_completed",
        "recovery:handshake_timeout",
        "transport:packet_sent",
        "transport:packet_received",
        "transport:packet_acked",
        "transport:packet_lost",
        "transport:hol_stall_started",
        "transport:hol_stall_ended",
        "recovery:metrics_updated",
        "recovery:pto_fired",
        "security:session_ticket_hit",
        "security:session_ticket_miss",
        "security:session_ticket_rejected",
        "security:zero_rtt_accepted",
        "http:stream_opened",
        "http:stream_closed",
        # Fault-injection events (repro.faults): one per injected fault.
        "fault:blackout",
        "fault:udp_blackhole",
        "fault:edge_outage",
        "fault:dns_failure",
        "fault:connection_reset",
        "fault:zero_rtt_reject",
        # Client-side recovery actions taken in response to faults.
        "recovery:h3_fallback",
        "recovery:connect_timeout",
        "recovery:connect_retry",
        "recovery:request_timeout",
        "recovery:request_retry",
        "recovery:request_failed",
        "recovery:dns_retry",
    }
)


class NullTracer:
    """The do-nothing, falsy tracer installed when tracing is off.

    Falsiness is the contract: hot paths guard with ``if self.tracer:``
    so a disabled connection never even enters the tracing call.  The
    no-op :meth:`event` keeps unguarded (cold-path) call sites safe.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def event(self, time: float, name: str, **data) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullTracer>"


#: Shared singleton; there is never a reason to allocate more than one.
NULL_TRACER = NullTracer()


class ConnectionTracer:
    """Event recorder for one connection (one qlog trace).

    Events are appended in simulation-callback order, which the
    deterministic event loop makes reproducible run to run.
    """

    __slots__ = ("name", "protocol", "events")

    def __init__(self, name: str, protocol: str) -> None:
        self.name = name
        self.protocol = protocol
        self.events: list[dict] = []

    def __bool__(self) -> bool:
        return True

    def event(self, time: float, name: str, **data) -> None:
        """Record one event at simulated time ``time`` (ms)."""
        self.events.append({"time": time, "name": name, "data": data})

    def count(self, name: str) -> int:
        """Number of recorded events with the given name."""
        return sum(1 for event in self.events if event["name"] == name)

    def tagged_events(self) -> list[dict]:
        """Events with the connection context folded in (export form)."""
        return [
            {
                "conn": self.name,
                "protocol": self.protocol,
                "time": event["time"],
                "name": event["name"],
                "data": event["data"],
            }
            for event in self.events
        ]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConnectionTracer {self.name} events={len(self.events)}>"
