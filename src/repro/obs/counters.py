"""Counters, gauges and histograms: the simulator's metrics registry.

One :class:`CounterRegistry` accumulates everything a page visit
observes (handshakes completed, 0-RTT accepts, HoL stalls, packets
lost, …).  Registries cross the parallel-campaign process boundary as
plain dicts and merge **deterministically**: counters and histograms
add, gauges combine with ``max`` (order-independent), and every
rendering sorts keys — so merging the per-visit registries of a
``workers=4`` run in canonical visit order reproduces the ``workers=1``
totals bit for bit.

Histograms use fixed logarithmic bucket boundaries (they never depend
on the data), which is what makes histogram merging a plain
element-wise sum.
"""

from __future__ import annotations

from typing import Iterable

#: Upper bucket edges for histograms (values in ms or bytes; the last
#: bucket is unbounded).  Fixed so merges are element-wise sums.
HISTOGRAM_EDGES: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0,
)

_FORMAT = "repro-h3cdn-counters/1"


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max sidecars."""

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(HISTOGRAM_EDGES) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        index = len(HISTOGRAM_EDGES)
        for i, edge in enumerate(HISTOGRAM_EDGES):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.counts),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Histogram":
        histogram = cls()
        buckets = raw.get("buckets", [])
        for i, n in enumerate(buckets[: len(histogram.counts)]):
            histogram.counts[i] = int(n)
        histogram.count = int(raw.get("count", 0))
        histogram.sum = float(raw.get("sum", 0.0))
        histogram.min = raw.get("min")
        histogram.max = raw.get("max")
        return histogram


class CounterRegistry:
    """Named counters/gauges/histograms with deterministic merging."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------

    def incr(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value; merges keep the maximum."""
        current = self._gauges.get(name)
        self._gauges[name] = value if current is None else max(current, value)

    def observe(self, name: str, value: float) -> None:
        """Add one sample to histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    # -- reading -------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def counter_names(self) -> list[str]:
        return sorted(self._counters)

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)

    # -- merging and serialization ------------------------------------

    def merge(self, other: "CounterRegistry") -> None:
        for name, value in other._counters.items():
            self.incr(name, value)
        for name, value in other._gauges.items():
            self.gauge(name, value)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram()
            mine.merge(histogram)

    def merge_dict(self, raw: dict) -> None:
        """Merge a :meth:`to_dict` rendering (the process-gap format)."""
        if raw.get("format") != _FORMAT:
            raise ValueError(f"unrecognized counters format: {raw.get('format')!r}")
        for name, value in raw.get("counters", {}).items():
            self.incr(name, value)
        for name, value in raw.get("gauges", {}).items():
            self.gauge(name, value)
        for name, histogram in raw.get("histograms", {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram()
            mine.merge(Histogram.from_dict(histogram))

    def to_dict(self) -> dict:
        """Sorted-key rendering; deterministic for deterministic inputs."""
        return {
            "format": _FORMAT,
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].to_dict() for k in sorted(self._histograms)
            },
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CounterRegistry":
        registry = cls()
        registry.merge_dict(raw)
        return registry

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def render(self) -> list[str]:
        """Human-readable lines, one metric per line, sorted."""
        lines = []
        for name in sorted(self._counters):
            value = self._counters[name]
            rendered = f"{value:.0f}" if value == int(value) else f"{value:.3f}"
            lines.append(f"  {name} = {rendered}")
        for name in sorted(self._gauges):
            lines.append(f"  {name} = {self._gauges[name]:.3f} (gauge)")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            lines.append(
                f"  {name} = count {h.count}, mean {h.mean:.2f}, "
                f"min {0.0 if h.min is None else h.min:.2f}, "
                f"max {0.0 if h.max is None else h.max:.2f} (histogram)"
            )
        return lines


def merge_counter_dicts(dicts: Iterable[dict]) -> CounterRegistry:
    """Merge many :meth:`CounterRegistry.to_dict` payloads, in order."""
    total = CounterRegistry()
    for raw in dicts:
        total.merge_dict(raw)
    return total
