"""Standard telemetry exporters: qlog 0.3 and Chrome trace-event JSON.

The simulator's native JSONL families (``repro.obs.trace`` events,
``repro.obs.metrics`` samples, ``repro.obs.spans`` records) are compact
and schema-checked, but the wider ecosystem already has excellent
viewers.  This module converts:

* traces → **qlog 0.3** (draft-ietf-quic-qlog-main-schema), one trace
  per simulated QUIC connection, loadable in qvis
  (https://qvis.quictools.info);
* spans → **Chrome trace-event JSON** (complete ``"X"`` events),
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Usage::

    python -m repro.obs.export qlog .trace/trace.jsonl -o out.qlog
    python -m repro.obs.export perfetto .trace/spans.jsonl -o out.json

Export is a pure read-side transform of drained records — nothing here
can influence a simulation.
"""

from __future__ import annotations

import argparse
import json
import sys

#: The qlog main-schema version this exporter emits.
QLOG_VERSION = "0.3"

#: Simulator event names translated to standard qlog 0.3 names; every
#: other event passes through verbatim (qlog permits custom events).
_QLOG_RENAMES = {
    "transport:packet_lost": "recovery:packet_lost",
    "recovery:metrics_updated": "recovery:metrics_updated",
}


def _qlog_event(record: dict) -> dict:
    """One tagged trace record → one qlog event dict."""
    name = record["name"]
    data = record.get("data") or {}
    if name in ("transport:packet_sent", "transport:packet_received"):
        out = {
            "header": {"packet_type": "1RTT", "packet_number": data.get("seq")},
            "raw": {"length": data.get("size")},
        }
        if data.get("retransmission"):
            out["is_retransmission"] = True
    elif name == "transport:packet_lost":
        out = {
            "header": {"packet_type": "1RTT", "packet_number": data.get("seq")},
            "trigger": data.get("trigger"),
        }
    elif name == "recovery:metrics_updated":
        out = {
            "congestion_window": data.get("cwnd"),
            "ssthresh": data.get("ssthresh"),
            "bytes_in_flight": data.get("bytes_in_flight"),
        }
    elif name == "metrics:transport_sample":
        # Periodic sampler records become additional metrics updates —
        # qvis plots them on the same congestion timeline.
        name = "recovery:metrics_updated"
        out = {
            "congestion_window": data.get("cwnd"),
            "bytes_in_flight": data.get("bytes_in_flight"),
            "smoothed_rtt": data.get("srtt_ms"),
        }
    else:
        out = dict(data)
    return {
        "time": record["time"],
        "name": _QLOG_RENAMES.get(name, name),
        "data": out,
    }


def to_qlog(
    events,
    *,
    title: str = "repro-h3cdn trace",
    protocols: tuple[str, ...] = ("h3",),
    conn: str | None = None,
) -> dict:
    """Build one qlog 0.3 document from tagged trace/metrics records.

    Records are grouped into one qlog trace per ``(page, probe, mode,
    conn)``; by default only QUIC (``h3``) connections are exported
    since qlog is a QUIC schema (``protocols=None`` exports every
    connection, TCP included, for side-by-side viewing).  ``conn``
    restricts the export to connections whose name contains it.
    """
    groups: dict[tuple, list] = {}
    for record in events:
        if protocols is not None and record.get("protocol") not in protocols:
            continue
        name = record.get("conn", "")
        if conn is not None and conn not in name:
            continue
        key = (
            record.get("page", ""),
            record.get("probe", ""),
            record.get("mode", ""),
            name,
        )
        groups.setdefault(key, []).append(record)

    traces = []
    for (page, probe, mode, conn_name), records in groups.items():
        records.sort(key=lambda r: r["time"])
        traces.append(
            {
                "title": f"{conn_name} [{mode}] {page}",
                "vantage_point": {"name": probe or "probe", "type": "client"},
                "common_fields": {
                    "ODCID": conn_name,
                    "time_format": "relative",
                    "reference_time": 0,
                    "protocol_type": [records[0].get("protocol", "h3")],
                },
                "events": [_qlog_event(record) for record in records],
            }
        )
    return {
        "qlog_version": QLOG_VERSION,
        "qlog_format": "JSON",
        "title": title,
        "traces": traces,
    }


def spans_to_trace_events(spans, *, pid: int = 1) -> dict:
    """Build a Chrome trace-event JSON document from tagged spans.

    Every span becomes one complete (``"ph": "X"``) event: ``ts`` is the
    span's sim-time start in microseconds, ``dur`` its sim-time length.
    Each ``(page, probe, mode)`` visit gets its own ``tid`` plus a
    ``thread_name`` metadata event, so Perfetto renders one track per
    visit with phases and transfers nested by time.
    """
    tids: dict[tuple, int] = {}
    trace_events: list[dict] = []
    for span in spans:
        key = (span.get("page", ""), span.get("probe", ""), span.get("mode", ""))
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"{key[2]} {key[0]} ({key[1]})"},
                }
            )
        args = {"id": span["id"]}
        if span.get("parent") is not None:
            args["parent"] = span["parent"]
        if span.get("wall_ms") is not None:
            args["wall_ms"] = span["wall_ms"]
        trace_events.append(
            {
                "name": span["name"],
                "cat": span["kind"],
                "ph": "X",
                "ts": span["t0"] * 1000.0,
                "dur": (span["t1"] - span["t0"]) * 1000.0,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _read_jsonl(path: str) -> list[dict]:
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Export simulator telemetry to standard viewers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    qlog = sub.add_parser("qlog", help="trace/metrics JSONL → qlog 0.3 (qvis)")
    qlog.add_argument("jsonl", help="trace.jsonl (optionally + metrics records)")
    qlog.add_argument("-o", "--out", default=None, help="output path (default stdout)")
    qlog.add_argument("--conn", default=None, help="only connections whose name contains this")
    qlog.add_argument(
        "--all-protocols",
        action="store_true",
        help="export TCP connections too (default: QUIC only)",
    )

    perfetto = sub.add_parser("perfetto", help="spans JSONL → Chrome trace-event JSON")
    perfetto.add_argument("jsonl", help="spans.jsonl")
    perfetto.add_argument("-o", "--out", default=None, help="output path (default stdout)")

    args = parser.parse_args(argv)
    records = _read_jsonl(args.jsonl)
    if args.command == "qlog":
        document = to_qlog(
            records,
            protocols=None if args.all_protocols else ("h3",),
            conn=args.conn,
        )
        summary = f"{len(document['traces'])} trace(s)"
    else:
        document = spans_to_trace_events(records)
        summary = f"{len(document['traceEvents'])} trace event(s)"
    rendered = json.dumps(document, indent=1, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}: {summary}", file=sys.stderr)
    else:
        print(rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
