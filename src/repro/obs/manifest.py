"""Run manifests: the provenance record a CLI run writes next to its data.

A manifest (``run.json``) captures everything needed to reproduce and
audit one ``repro-h3cdn`` invocation: the resolved configuration and
seed, per-experiment wall-clock, and the campaign's merged counter
totals.  ``--trace-dir`` and ``--json`` both embed/write one.
"""

from __future__ import annotations

import json
import platform
import time

MANIFEST_FORMAT = "repro-h3cdn-run/1"


def build_run_manifest(
    *,
    invocation: dict,
    experiments: list[dict],
    counters: dict | None = None,
    trace_files: list[str] | None = None,
    fallback_sweep: dict | None = None,
    migration_sweep: dict | None = None,
    config_hash: str | None = None,
    store: dict | None = None,
    classifiers: dict | None = None,
    metrics: dict | None = None,
    spans: dict | None = None,
    progress: dict | None = None,
    loop_profile: dict | None = None,
) -> dict:
    """Assemble a manifest document.

    ``invocation`` carries the resolved CLI configuration (scale, sites,
    seed, workers, flags); ``experiments`` is a list of
    ``{"id", "title", "wall_clock_s"}`` entries in execution order;
    ``counters`` is a merged :meth:`CounterRegistry.to_dict` payload (or
    ``None`` when counters were not collected); ``fallback_sweep`` is
    the ``fig-fallback`` experiment's data payload, recorded only when
    that experiment ran (the key is absent otherwise, keeping fault-free
    manifests unchanged); ``migration_sweep`` is the ``fig-migration``
    payload under the same rule.  ``config_hash`` is the campaign config's
    content hash (:func:`repro.store.campaign_config_hash`) and
    ``store`` the result-store accounting
    (``{"path", "stats", "summary"}``); both keys are absent when not
    provided, keeping store-less manifests unchanged.

    The deep-telemetry sections follow the same absent-when-``None``
    rule: ``metrics`` summarizes the sim-time sampler output
    (``{"interval_ms", "records"}``), ``spans`` the span export
    (``{"records"}``), ``progress`` is the live reporter's final
    summary, and ``loop_profile`` the merged event-loop callback
    profile (wall-clock; top entries only).

    ``classifiers`` is the CDN-classifier realism check — the
    disagreement rate between the header-based (LocEdge-style) and the
    dictionary-based (detect_website_cdn-style) classifier over the
    campaign's HAR entries (:func:`repro.cdn.classifier.
    classifier_disagreement`); absent when no campaign ran.
    """
    manifest = {
        "format": MANIFEST_FORMAT,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "invocation": dict(invocation),
        "experiments": [dict(entry) for entry in experiments],
        "total_wall_clock_s": sum(e.get("wall_clock_s", 0.0) for e in experiments),
        "counters": counters,
        "trace_files": list(trace_files) if trace_files else [],
    }
    if config_hash is not None:
        manifest["config_hash"] = config_hash
    if fallback_sweep is not None:
        manifest["fallback_sweep"] = dict(fallback_sweep)
    if migration_sweep is not None:
        manifest["migration_sweep"] = dict(migration_sweep)
    if store is not None:
        manifest["store"] = dict(store)
    if classifiers is not None:
        manifest["classifiers"] = dict(classifiers)
    if metrics is not None:
        manifest["metrics"] = dict(metrics)
    if spans is not None:
        manifest["spans"] = dict(spans)
    if progress is not None:
        manifest["progress"] = dict(progress)
    if loop_profile is not None:
        manifest["loop_profile"] = dict(loop_profile)
    return manifest


def write_run_manifest(path: str, manifest: dict) -> None:
    """Write a manifest as canonical pretty-printed JSON.

    Keys are sorted so two manifests of equivalent runs diff cleanly
    byte for byte — the same canonicalization rule the result store
    applies to its payloads.
    """
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ValueError("not a run manifest")
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_run_manifest(path: str) -> dict:
    """Read and minimally check a manifest written by this module."""
    with open(path) as handle:
        manifest = json.load(handle)
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"{path}: not a run manifest")
    return manifest
