"""Sim-time metrics sampling: periodic transport/link timeseries.

Point events (:mod:`repro.obs.trace`) answer *what happened*; the
metrics sampler answers *what the state looked like over time* — the
cwnd-vs-time, queue-depth and goodput curves behind the paper's
Figs. 6–9.  A :class:`ConnectionSampler` rides along on one connection
and a :class:`LinkSampler` on one simulated link; both take a sample at
most once per configurable sim-time interval (Δt) into a bounded ring
buffer, and drain as the ``metrics:`` JSONL record family.

Determinism contract
--------------------

Samplers are **passive**: they never schedule events.  A sample is
taken at the first transport/link callback at-or-after each Δt grid
boundary (plus forced samples on loss and PTO, which are themselves
sim events), so a sampler-on run executes the exact same event
sequence as a sampler-off run and results stay bit-identical — the
same invariant the tracer keeps.  The only behavioural interaction is
that an attached connection sampler forces the analytic fast path off
(it wants the real per-packet dynamics), mirroring tracer/strict
semantics.

When sampling is disabled the transports hold the falsy
:data:`NULL_SAMPLER` singleton and hot paths guard with
``if self.sampler:`` — one attribute load plus a boolean check, never
a call.
"""

from __future__ import annotations

from collections import deque

#: Record names this module emits (registered in the trace schema).
TRANSPORT_SAMPLE = "metrics:transport_sample"
LINK_SAMPLE = "metrics:link_sample"

#: Default ring-buffer capacity per sampler (oldest samples drop first).
DEFAULT_MAX_SAMPLES = 512


class NullSampler:
    """The do-nothing, falsy sampler installed when sampling is off.

    Same contract as :class:`~repro.obs.trace.NullTracer`: hot paths
    guard with ``if self.sampler:`` so the disabled cost is one
    attribute load and a boolean check.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def on_ack(self, conn) -> None:
        pass

    def on_loss(self, conn) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullSampler>"


#: Shared singleton; there is never a reason to allocate more than one.
NULL_SAMPLER = NullSampler()


class ConnectionSampler:
    """Δt-gated state sampler for one connection.

    Samples ``(time, cwnd, bytes_in_flight, srtt_ms, goodput_kbps)``
    flat tuples into a bounded ring.  ``on_ack`` is called from the
    server-side ack path (the point where cwnd/rtt just changed) and
    samples only when sim time has crossed the next Δt grid boundary;
    ``on_loss`` forces a sample so congestion events are never missed
    between grid points.  Goodput is averaged over the window since the
    previous sample (kbit/s of acked response payload).
    """

    __slots__ = (
        "name",
        "protocol",
        "interval_ms",
        "_samples",
        "_next_due",
        "_last_time",
        "_last_delivered",
    )

    def __init__(
        self,
        name: str,
        protocol: str,
        interval_ms: float,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive, got {interval_ms}")
        self.name = name
        self.protocol = protocol
        self.interval_ms = interval_ms
        self._samples: deque[tuple] = deque(maxlen=max_samples)
        self._next_due = 0.0
        self._last_time = 0.0
        self._last_delivered = 0

    def __bool__(self) -> bool:
        return True

    # -- recording (hot) -----------------------------------------------

    def on_ack(self, conn) -> None:
        if conn.loop.now < self._next_due:
            return
        self._sample(conn)

    def on_loss(self, conn) -> None:
        self._sample(conn)

    def _sample(self, conn) -> None:
        now = conn.loop.now
        delivered = conn._delivered_bytes
        window_ms = now - self._last_time
        if window_ms > 0:
            # bytes/ms == kB/s; ×8 → kbit/s.
            goodput_kbps = (delivered - self._last_delivered) * 8.0 / window_ms
        else:
            goodput_kbps = 0.0
        self._samples.append(
            (
                now,
                conn.cc.cwnd_bytes,
                conn._bytes_in_flight,
                conn.rtt.srtt_ms,
                goodput_kbps,
            )
        )
        self._last_time = now
        self._last_delivered = delivered
        interval = self.interval_ms
        self._next_due = (now // interval + 1.0) * interval

    # -- export (drain time) -------------------------------------------

    def records(self) -> list[dict]:
        """Materialized, connection-tagged ``metrics:`` records."""
        conn = self.name
        protocol = self.protocol
        return [
            {
                "conn": conn,
                "protocol": protocol,
                "time": time,
                "name": TRANSPORT_SAMPLE,
                "data": {
                    "cwnd": cwnd,
                    "bytes_in_flight": in_flight,
                    "srtt_ms": srtt,
                    "goodput_kbps": goodput,
                },
            }
            for time, cwnd, in_flight, srtt, goodput in self._samples
        ]

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConnectionSampler {self.name} samples={len(self._samples)}>"


class LinkSampler:
    """Δt-gated queue/throughput sampler for one simulated link.

    ``on_transmit`` is called from :meth:`repro.netsim.link.Link.transmit`
    after the transmitter slot is reserved.  Bytes are accumulated every
    call (one integer add between samples); when sim time crosses the
    Δt boundary the sampler records ``(time, queue_ms, throughput_kbps)``
    where ``queue_ms`` is how far the transmitter is booked ahead of
    *now* (serialization backlog, the sim's pacing/queue depth) and
    ``throughput_kbps`` averages the bytes offered since the previous
    sample.
    """

    __slots__ = (
        "name",
        "interval_ms",
        "_samples",
        "_next_due",
        "_last_time",
        "_window_bytes",
    )

    #: The ``protocol`` tag link records carry (there is no transport).
    protocol = "link"

    def __init__(
        self,
        name: str,
        interval_ms: float,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive, got {interval_ms}")
        self.name = name
        self.interval_ms = interval_ms
        self._samples: deque[tuple] = deque(maxlen=max_samples)
        self._next_due = 0.0
        self._last_time = 0.0
        self._window_bytes = 0

    def __bool__(self) -> bool:
        return True

    # -- recording (hot) -----------------------------------------------

    def on_transmit(self, now: float, tx_done: float, size_bytes: int) -> None:
        self._window_bytes += size_bytes
        if now < self._next_due:
            return
        window_ms = now - self._last_time
        throughput_kbps = (
            self._window_bytes * 8.0 / window_ms if window_ms > 0 else 0.0
        )
        self._samples.append((now, max(0.0, tx_done - now), throughput_kbps))
        self._last_time = now
        self._window_bytes = 0
        interval = self.interval_ms
        self._next_due = (now // interval + 1.0) * interval

    # -- export (drain time) -------------------------------------------

    def records(self) -> list[dict]:
        """Materialized, link-tagged ``metrics:`` records."""
        conn = self.name
        return [
            {
                "conn": conn,
                "protocol": self.protocol,
                "time": time,
                "name": LINK_SAMPLE,
                "data": {
                    "queue_ms": queue_ms,
                    "throughput_kbps": throughput,
                },
            }
            for time, queue_ms, throughput in self._samples
        ]

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LinkSampler {self.name} samples={len(self._samples)}>"


def timeseries(
    records: list[dict] | "object", field: str, name: str | None = None
) -> dict[str, list[tuple[float, float]]]:
    """Group ``metrics:`` records into per-source (time, value) series.

    ``records`` is any iterable of metrics records (a visit's drained
    ``metrics`` list or :meth:`CampaignResult.metrics_events` output);
    ``field`` selects the data field to plot (``"cwnd"``,
    ``"goodput_kbps"``, ``"queue_ms"``, ...), ``name`` optionally
    restricts to one record family.  The result feeds straight into
    :func:`repro.analysis.textplot.line_chart`::

        print("\\n".join(line_chart(timeseries(visit.metrics, "cwnd"))))
    """
    series: dict[str, list[tuple[float, float]]] = {}
    for record in records:
        if name is not None and record.get("name") != name:
            continue
        value = record.get("data", {}).get(field)
        if value is None:
            continue
        series.setdefault(record["conn"], []).append(
            (record["time"], float(value))
        )
    return series
