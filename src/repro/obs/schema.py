"""Telemetry schema: validation for exported JSONL records.

The CLI's ``--trace-dir`` export writes one JSON object per line; this
module is the single source of truth for what a valid line looks like,
used by ``make trace-smoke`` / ``make obs-smoke``, the tests, and any
downstream consumer::

    PYTHONPATH=src python -m repro.obs.schema trace.jsonl metrics.jsonl spans.jsonl

Two record shapes exist, dispatched on their keys:

* **events** (tracer events and metrics samples) carry ``name`` — one
  of :data:`repro.obs.trace.EVENT_NAMES` — plus ``time``, ``data``,
  ``conn``/``protocol`` and optional campaign context.  Every event
  family registers its permitted ``data`` keys in :data:`DATA_FIELDS`;
  an unregistered key is a validation error (missing keys are allowed —
  several families have optional fields).
* **spans** (:mod:`repro.obs.spans`) carry ``kind`` — one of
  :data:`repro.obs.spans.SPAN_KINDS` — plus ``id``/``parent``/``name``/
  ``t0``/``t1``/``wall_ms`` and the same optional context.

An object that is neither (no ``name``, no ``kind``) is an **error**,
not a silent pass: unknown record types in a telemetry file mean a
writer and this schema have diverged.
"""

from __future__ import annotations

import json
import sys

from repro.obs.spans import SPAN_KINDS
from repro.obs.trace import EVENT_NAMES

#: Context keys the campaign exporter may add around any record.
OPTIONAL_CONTEXT_KEYS = ("page", "probe", "mode")

#: Permitted ``data`` keys per event family.  Validation rejects keys
#: outside the family's set but tolerates absent ones (families like
#: ``request_timeout`` have optional fields, and the TCP and QUIC
#: tracers emit different subsets for the HoL events).
DATA_FIELDS: dict[str, frozenset[str]] = {
    "transport:handshake_started": frozenset({"flights"}),
    "transport:handshake_flight": frozenset({"flight", "elapsed_ms"}),
    "transport:handshake_completed": frozenset({"connect_ms", "zero_rtt", "retries"}),
    "recovery:handshake_timeout": frozenset({"flight", "retries"}),
    "transport:packet_sent": frozenset({"seq", "size", "dir", "retransmission"}),
    "transport:packet_received": frozenset({"seq", "size", "retransmission"}),
    "transport:packet_acked": frozenset({"seq"}),
    "transport:packet_lost": frozenset({"seq", "trigger"}),
    "transport:hol_stall_started": frozenset({"blocked_from", "stream_id"}),
    "transport:hol_stall_ended": frozenset({"duration_ms", "stream_id"}),
    "recovery:metrics_updated": frozenset({"cwnd", "ssthresh", "bytes_in_flight"}),
    "recovery:pto_fired": frozenset({"backoff"}),
    "security:session_ticket_hit": frozenset({"host"}),
    "security:session_ticket_miss": frozenset({"host"}),
    "security:session_ticket_rejected": frozenset({"host"}),
    "security:zero_rtt_accepted": frozenset({"host"}),
    "http:stream_opened": frozenset({"stream_id", "request_bytes", "response_bytes"}),
    "http:stream_closed": frozenset({"stream_id", "first_byte_ms", "duration_ms"}),
    # Fault-injection events: host plus fault-specific detail.
    "fault:blackout": frozenset({"host"}),
    "fault:udp_blackhole": frozenset({"host"}),
    "fault:edge_outage": frozenset({"host"}),
    "fault:dns_failure": frozenset({"host", "attempt"}),
    "fault:connection_reset": frozenset({"host", "streams"}),
    "fault:zero_rtt_reject": frozenset({"host"}),
    "fault:nat_rebind": frozenset({"host", "streams"}),
    "fault:wifi_to_cellular": frozenset({"host", "streams"}),
    # Connection-migration outcomes per established connection.
    "migration:migrated": frozenset({"host", "protocol", "streams"}),
    "migration:reconnect": frozenset({"host", "protocol", "streams"}),
    # Proxy topology events.
    "proxy:h3_downgrade": frozenset({"host", "model"}),
    # Client-side recovery actions.
    "recovery:h3_fallback": frozenset({"host", "orphaned"}),
    "recovery:connect_timeout": frozenset({"host", "protocol"}),
    "recovery:connect_retry": frozenset({"host", "attempt", "delay_ms"}),
    "recovery:request_timeout": frozenset({"host", "reason"}),
    "recovery:request_retry": frozenset({"host", "attempt", "delay_ms"}),
    "recovery:request_failed": frozenset({"host", "reason"}),
    "recovery:dns_retry": frozenset({"host", "attempt"}),
    # Sim-time metrics samples.
    "metrics:transport_sample": frozenset(
        {"cwnd", "bytes_in_flight", "srtt_ms", "goodput_kbps"}
    ),
    "metrics:link_sample": frozenset({"queue_ms", "throughput_kbps"}),
    # CDN cache-hierarchy events: tier that answered, hops traversed.
    "cache:hit": frozenset({"host", "tier"}),
    "cache:miss": frozenset({"host", "hops"}),
    # Provider-side byte accounting per served request.
    "economics:egress": frozenset({"host", "bytes", "encoding", "source"}),
    "economics:origin_fetch": frozenset({"host", "bytes"}),
}

# Every event family must register its fields: the two sets drifting
# apart is exactly the bug this assert turns into an import error.
assert frozenset(DATA_FIELDS) == EVENT_NAMES, (
    "DATA_FIELDS and EVENT_NAMES disagree: "
    f"{frozenset(DATA_FIELDS) ^ EVENT_NAMES}"
)


class TraceSchemaError(ValueError):
    """Raised when a telemetry record violates the schema."""


def _check_context(record: dict) -> None:
    for key in OPTIONAL_CONTEXT_KEYS:
        if key in record and not isinstance(record[key], str):
            raise TraceSchemaError(f"{key!r} must be a string when present")


def validate_event(event: object) -> None:
    """Raise :class:`TraceSchemaError` unless ``event`` is schema-valid."""
    if not isinstance(event, dict):
        raise TraceSchemaError(f"event must be an object, got {type(event).__name__}")
    time = event.get("time")
    if not isinstance(time, (int, float)) or isinstance(time, bool) or time < 0:
        raise TraceSchemaError(f"'time' must be a non-negative number, got {time!r}")
    name = event.get("name")
    if name not in EVENT_NAMES:
        raise TraceSchemaError(f"unknown event name {name!r}")
    data = event.get("data")
    if not isinstance(data, dict):
        raise TraceSchemaError(f"'data' must be an object, got {type(data).__name__}")
    allowed = DATA_FIELDS[name]
    for key, value in data.items():
        if not isinstance(key, str):
            raise TraceSchemaError(f"data key {key!r} is not a string")
        if key not in allowed:
            raise TraceSchemaError(
                f"data key {key!r} is not registered for {name!r}"
            )
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise TraceSchemaError(
                f"data[{key!r}] must be a JSON scalar, got {type(value).__name__}"
            )
    for key in ("conn", "protocol"):
        if not isinstance(event.get(key), str):
            raise TraceSchemaError(f"{key!r} must be a string")
    _check_context(event)


def validate_span(span: object) -> None:
    """Raise :class:`TraceSchemaError` unless ``span`` is schema-valid."""
    if not isinstance(span, dict):
        raise TraceSchemaError(f"span must be an object, got {type(span).__name__}")
    kind = span.get("kind")
    if kind not in SPAN_KINDS:
        raise TraceSchemaError(f"unknown span kind {kind!r}")
    span_id = span.get("id")
    if not isinstance(span_id, int) or isinstance(span_id, bool) or span_id < 1:
        raise TraceSchemaError(f"'id' must be a positive integer, got {span_id!r}")
    parent = span.get("parent")
    if parent is not None and (not isinstance(parent, int) or isinstance(parent, bool)):
        raise TraceSchemaError(f"'parent' must be an integer or null, got {parent!r}")
    if not isinstance(span.get("name"), str):
        raise TraceSchemaError("'name' must be a string")
    for key in ("t0", "t1"):
        value = span.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
            raise TraceSchemaError(
                f"{key!r} must be a non-negative number, got {value!r}"
            )
    if span["t1"] < span["t0"]:
        raise TraceSchemaError(f"'t1' ({span['t1']}) precedes 't0' ({span['t0']})")
    wall_ms = span.get("wall_ms")
    if wall_ms is not None and (
        not isinstance(wall_ms, (int, float)) or isinstance(wall_ms, bool) or wall_ms < 0
    ):
        raise TraceSchemaError(
            f"'wall_ms' must be a non-negative number or null, got {wall_ms!r}"
        )
    _check_context(span)


def validate_record(record: object) -> None:
    """Validate one telemetry record of either shape.

    Dispatches on the record's keys: ``kind`` → span, ``name`` → event.
    A record with neither is an error — unknown record types mean a
    writer and this schema have diverged, and silence would hide it.
    """
    if not isinstance(record, dict):
        raise TraceSchemaError(
            f"record must be an object, got {type(record).__name__}"
        )
    if "kind" in record:
        validate_span(record)
    elif "name" in record:
        validate_event(record)
    else:
        raise TraceSchemaError(
            "unknown record type: neither an event ('name') nor a span ('kind')"
        )


def validate_events(events: list) -> int:
    """Validate a list of record objects; returns how many passed."""
    for index, event in enumerate(events):
        try:
            validate_record(event)
        except TraceSchemaError as exc:
            raise TraceSchemaError(f"event {index}: {exc}") from None
    return len(events)


def validate_jsonl(path: str) -> int:
    """Validate one JSONL telemetry file; returns the record count."""
    count = 0
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"{path}:{line_number}: not JSON: {exc}") from None
            try:
                validate_record(record)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{line_number}: {exc}") from None
            count += 1
    return count


def main(argv: list[str] | None = None) -> int:
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.schema RECORDS.jsonl [...]", file=sys.stderr)
        return 2
    for path in paths:
        try:
            count = validate_jsonl(path)
        except (TraceSchemaError, OSError) as exc:
            print(f"INVALID {path}: {exc}", file=sys.stderr)
            return 1
        print(f"ok {path}: {count} records")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
