"""Trace-event schema: validation for exported JSONL traces.

The CLI's ``--trace-dir`` export writes one JSON object per line; this
module is the single source of truth for what a valid line looks like,
used by ``make trace-smoke``, the tests, and any downstream consumer::

    PYTHONPATH=src python -m repro.obs.schema trace_campaign.jsonl

A valid event object has:

* ``time``  — non-negative number (simulated milliseconds),
* ``name``  — one of :data:`repro.obs.trace.EVENT_NAMES`,
* ``data``  — object of JSON scalars (event-specific payload),
* ``conn`` / ``protocol`` — strings identifying the connection,
* optionally ``page`` / ``probe`` / ``mode`` — campaign context added
  by the exporter.
"""

from __future__ import annotations

import json
import sys

from repro.obs.trace import EVENT_NAMES

#: Context keys the campaign exporter may add around a tracer event.
OPTIONAL_CONTEXT_KEYS = ("page", "probe", "mode")


class TraceSchemaError(ValueError):
    """Raised when a trace event violates the schema."""


def validate_event(event: object) -> None:
    """Raise :class:`TraceSchemaError` unless ``event`` is schema-valid."""
    if not isinstance(event, dict):
        raise TraceSchemaError(f"event must be an object, got {type(event).__name__}")
    time = event.get("time")
    if not isinstance(time, (int, float)) or isinstance(time, bool) or time < 0:
        raise TraceSchemaError(f"'time' must be a non-negative number, got {time!r}")
    name = event.get("name")
    if name not in EVENT_NAMES:
        raise TraceSchemaError(f"unknown event name {name!r}")
    data = event.get("data")
    if not isinstance(data, dict):
        raise TraceSchemaError(f"'data' must be an object, got {type(data).__name__}")
    for key, value in data.items():
        if not isinstance(key, str):
            raise TraceSchemaError(f"data key {key!r} is not a string")
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise TraceSchemaError(
                f"data[{key!r}] must be a JSON scalar, got {type(value).__name__}"
            )
    for key in ("conn", "protocol"):
        if not isinstance(event.get(key), str):
            raise TraceSchemaError(f"{key!r} must be a string")
    for key in OPTIONAL_CONTEXT_KEYS:
        if key in event and not isinstance(event[key], str):
            raise TraceSchemaError(f"{key!r} must be a string when present")


def validate_events(events: list) -> int:
    """Validate a list of event objects; returns how many passed."""
    for index, event in enumerate(events):
        try:
            validate_event(event)
        except TraceSchemaError as exc:
            raise TraceSchemaError(f"event {index}: {exc}") from None
    return len(events)


def validate_jsonl(path: str) -> int:
    """Validate one JSONL trace file; returns the event count."""
    count = 0
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"{path}:{line_number}: not JSON: {exc}") from None
            try:
                validate_event(event)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{line_number}: {exc}") from None
            count += 1
    return count


def main(argv: list[str] | None = None) -> int:
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.schema TRACE.jsonl [...]", file=sys.stderr)
        return 2
    for path in paths:
        try:
            count = validate_jsonl(path)
        except (TraceSchemaError, OSError) as exc:
            print(f"INVALID {path}: {exc}", file=sys.stderr)
            return 1
        print(f"ok {path}: {count} events")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
