"""Live campaign progress: wall-clock heartbeats and a run summary.

Long campaigns are opaque while they run — the simulator is silent
until the result object comes back.  :class:`ProgressReporter` fixes
that with heartbeat lines on stderr (never stdout, which belongs to
``--json`` output) driven by a *wall-clock* ticker, plus a final
summary dict the run manifest records.

Everything here reads host time and host memory only.  The reporter
observes finished outcomes — it never touches a live simulation — so
enabling progress cannot change a single result.  None of its fields
enter store content keys.
"""

from __future__ import annotations

import sys
import time

#: Counter names the reporter understands (absent counters read as 0).
_EVENTS_COUNTER = "loop.events_processed"
_FASTPATH_COUNTER = "transport.fastpath.epochs"
_REQUESTS_COUNTER = "pool.requests"


def peak_rss_kb() -> int | None:
    """Peak resident set size of this process tree, in KiB.

    Uses ``resource.getrusage`` (``ru_maxrss`` is KiB on Linux); returns
    ``None`` on platforms without the module.  Children are included so
    pooled campaigns report the real footprint.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return None
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(max(own, children))


class ProgressReporter:
    """Counts finished visits and emits periodic heartbeat lines.

    The campaign runner calls :meth:`add_outcome` for every fresh
    outcome (and :meth:`add_replayed` for store hits); at most one
    heartbeat per ``interval_s`` of wall-clock time is written to
    ``stream``.  :meth:`finish` returns the summary dict.
    """

    def __init__(
        self,
        total: int,
        workers: int = 1,
        interval_s: float = 1.0,
        stream=None,
    ) -> None:
        self.total = total
        self.workers = workers
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.replayed = 0
        self.failed = 0
        self.events = 0
        self.fastpath_epochs = 0
        self.requests = 0
        self.heartbeats = 0
        self._started = time.monotonic()
        self._last_beat = self._started

    # -- feeding -------------------------------------------------------

    def add_replayed(self, n: int = 1) -> None:
        """Count ``n`` visits served from the result store."""
        self.done += n
        self.replayed += n
        self._maybe_heartbeat()

    def add_outcome(self, outcome) -> None:
        """Count one freshly measured :class:`VisitOutcome`."""
        self.done += 1
        if getattr(outcome, "status", "ok") == "failed":
            self.failed += 1
        for visit in (getattr(outcome, "h2", None), getattr(outcome, "h3", None)):
            payload = getattr(visit, "counters", None)
            if not payload:
                continue
            counters = payload.get("counters", {})
            self.events += _as_int(counters.get(_EVENTS_COUNTER))
            self.fastpath_epochs += _as_int(counters.get(_FASTPATH_COUNTER))
            self.requests += _as_int(counters.get(_REQUESTS_COUNTER))
        self._maybe_heartbeat()

    # -- reporting -----------------------------------------------------

    def _maybe_heartbeat(self) -> None:
        now = time.monotonic()
        if now - self._last_beat < self.interval_s and self.done < self.total:
            return
        self._last_beat = now
        self.heartbeats += 1
        self.stream.write(self.heartbeat_line(now) + "\n")
        self.stream.flush()

    def heartbeat_line(self, now: float | None = None) -> str:
        """One human-readable status line (also what lands on stderr)."""
        now = time.monotonic() if now is None else now
        elapsed = max(now - self._started, 1e-9)
        rate = self.done / elapsed
        remaining = self.total - self.done
        eta = remaining / rate if rate > 0 else float("inf")
        parts = [
            f"[progress] {self.done}/{self.total} visits"
            f" ({100.0 * self.done / self.total:.0f}%)" if self.total else
            f"[progress] {self.done} visits",
            f"{rate:.1f} visits/s",
        ]
        if self.events:
            parts.append(f"{self.events / elapsed / 1e3:.0f}k ev/s")
        if self.requests:
            parts.append(
                f"fastpath {100.0 * self.fastpath_epochs / self.requests:.0f}%"
            )
        if self.replayed:
            parts.append(f"{self.replayed} replayed")
        if self.failed:
            parts.append(f"{self.failed} failed")
        parts.append(f"workers={self.workers}")
        rss = peak_rss_kb()
        if rss is not None:
            parts.append(f"rss={rss / 1024.0:.0f}MiB")
        if remaining > 0 and rate > 0:
            parts.append(f"eta {eta:.0f}s")
        return "  ".join(parts)

    def finish(self) -> dict:
        """Final summary for the run manifest (wall-clock, diagnostic)."""
        elapsed = max(time.monotonic() - self._started, 1e-9)
        summary = {
            "visits": self.done,
            "total": self.total,
            "replayed": self.replayed,
            "failed": self.failed,
            "wall_s": round(elapsed, 3),
            "visits_per_s": round(self.done / elapsed, 3),
            "events": self.events,
            "events_per_s": round(self.events / elapsed, 1),
            "workers": self.workers,
            "heartbeats": self.heartbeats,
        }
        if self.requests:
            summary["fastpath_hit_rate"] = round(
                self.fastpath_epochs / self.requests, 4
            )
        rss = peak_rss_kb()
        if rss is not None:
            summary["peak_rss_kb"] = rss
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProgressReporter {self.done}/{self.total}>"


def _as_int(value) -> int:
    """Counter value as an int (registry values are floats; dicts → 0)."""
    return int(value) if isinstance(value, (int, float)) else 0
