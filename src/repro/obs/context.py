"""The observability context threaded through a simulation.

One :class:`ObsContext` lives for the duration of a probe's work and is
shared by its browsers, connection pools and transports.  It owns:

* the :class:`~repro.obs.counters.CounterRegistry` every layer
  increments into, and
* the list of :class:`~repro.obs.trace.ConnectionTracer` instances
  handed to connections while tracing is enabled.

Both are **drained per page visit**: :meth:`drain_visit` snapshots the
accumulated counters and trace events into plain (picklable) payloads
and resets the context, so each :class:`~repro.browser.browser.PageVisit`
carries exactly its own telemetry across the parallel-campaign process
boundary.
"""

from __future__ import annotations

from repro.obs.counters import CounterRegistry
from repro.obs.trace import ConnectionTracer, TraceLog


class ObsContext:
    """Observability switchboard for one probe/browser stack."""

    def __init__(self, trace: bool = False, profile_loop: bool = False) -> None:
        #: Whether connections receive a real tracer (vs NULL_TRACER).
        self.trace_enabled = trace
        #: Whether probes should enable event-loop callback profiling.
        self.profile_loop = profile_loop
        self.counters = CounterRegistry()
        self._tracers: list[ConnectionTracer] = []
        self._fault_tracer: ConnectionTracer | None = None
        # Batched transport totals: absorb_connection sums plain ints
        # here and drain_visit flushes them as one increment per key,
        # instead of eight registry calls per torn-down connection.
        self._absorbed = [0, 0, 0, 0, 0, 0, 0, 0.0]

    # ------------------------------------------------------------------

    def connection_tracer(self, name: str, protocol: str) -> ConnectionTracer | None:
        """A registered tracer for a new connection, or ``None``.

        Returns ``None`` when tracing is disabled so the transport falls
        back to the zero-cost null tracer.
        """
        if not self.trace_enabled:
            return None
        tracer = ConnectionTracer(name, protocol)
        self._tracers.append(tracer)
        return tracer

    def fault_tracer(self) -> ConnectionTracer | None:
        """The shared tracer for ``fault:``/``recovery:`` events.

        Fault events are not tied to one connection (DNS failures and
        H3→H2 fallback span several), so the injector funnels them into
        a single per-drain-cycle tracer named ``fault-injector``.  Lazily
        re-created after every :meth:`drain_visit`.
        """
        if not self.trace_enabled:
            return None
        tracer = self._fault_tracer
        if tracer is None:
            tracer = self.connection_tracer("fault-injector", "fault")
            self._fault_tracer = tracer
        return tracer

    def absorb_connection(self, conn) -> None:
        """Fold one finished connection's stats into the counters.

        Called by the pool at teardown (cold path), so per-packet
        accounting stays on the existing ``ConnectionStats`` fast path
        and only aggregates here; the sums are flushed to the registry
        once per visit by :meth:`drain_visit`.
        """
        stats = conn.stats
        absorbed = self._absorbed
        absorbed[0] += stats.data_packets_sent
        absorbed[1] += stats.data_packets_lost
        absorbed[2] += stats.retransmissions
        absorbed[3] += stats.acks_received
        absorbed[4] += stats.rto_events
        absorbed[5] += stats.hol_blocked_chunks
        absorbed[6] += stats.hol_stalls
        absorbed[7] += stats.hol_stall_ms

    #: Registry keys matching the ``_absorbed`` slots, in order.
    _ABSORBED_KEYS = (
        "transport.packets.sent",
        "transport.packets.lost",
        "transport.packets.retransmitted",
        "transport.acks.received",
        "transport.pto.fired",
        "transport.hol.blocked_chunks",
        "transport.hol.stalls",
        "transport.hol.stall_ms",
    )

    def _flush_absorbed(self) -> None:
        absorbed = self._absorbed
        incr = self.counters.incr
        for key, value in zip(self._ABSORBED_KEYS, absorbed):
            if value:
                incr(key, value)
        self._absorbed = [0, 0, 0, 0, 0, 0, 0, 0.0]

    # ------------------------------------------------------------------

    def trace_events(self) -> list[dict]:
        """All recorded events, connection-tagged, in creation order."""
        events: list[dict] = []
        for tracer in self._tracers:
            events.extend(tracer.tagged_events())
        return events

    def drain_visit(self) -> tuple[dict, "TraceLog | None"]:
        """Snapshot and reset: ``(counters dict, trace log or None)``.

        The trace comes back as a lazy :class:`~repro.obs.trace.TraceLog`
        over the raw record tuples — drain itself does zero per-event
        work; export dicts materialize only if someone reads the trace.
        """
        self._flush_absorbed()
        counters = self.counters.to_dict()
        self.counters.clear()
        trace: TraceLog | None = None
        if self.trace_enabled:
            trace = TraceLog(self._tracers)
        self._tracers.clear()
        self._fault_tracer = None
        return counters, trace
