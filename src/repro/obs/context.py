"""The observability context threaded through a simulation.

One :class:`ObsContext` lives for the duration of a probe's work and is
shared by its browsers, connection pools and transports.  It owns:

* the :class:`~repro.obs.counters.CounterRegistry` every layer
  increments into,
* the list of :class:`~repro.obs.trace.ConnectionTracer` instances
  handed to connections while tracing is enabled,
* the :mod:`~repro.obs.metrics` samplers attached to connections and
  links while sim-time metrics sampling is enabled, and
* the :class:`~repro.obs.spans.SpanRecorder` while span recording is
  enabled.

All four are **drained per page visit**: :meth:`drain_visit` snapshots
the accumulated telemetry into plain (picklable) payloads and resets
the context, so each :class:`~repro.browser.browser.PageVisit` carries
exactly its own telemetry across the parallel-campaign process
boundary.
"""

from __future__ import annotations

from repro.obs.counters import CounterRegistry
from repro.obs.metrics import ConnectionSampler, LinkSampler
from repro.obs.spans import SpanRecorder
from repro.obs.trace import ConnectionTracer, TraceLog


class ObsContext:
    """Observability switchboard for one probe/browser stack."""

    def __init__(
        self,
        trace: bool = False,
        profile_loop: bool = False,
        counters: bool = True,
        metrics_interval_ms: float | None = None,
        metrics_max_samples: int = 512,
        spans: bool = False,
    ) -> None:
        #: Whether connections receive a real tracer (vs NULL_TRACER).
        self.trace_enabled = trace
        #: Whether probes should enable event-loop callback profiling.
        self.profile_loop = profile_loop
        #: Whether drain_visit reports counters (the registry always
        #: exists so unguarded cold-path increments stay safe; when this
        #: is off the accumulated values are discarded at drain).
        self.counters_enabled = counters
        #: Sim-time sampling interval (ms); None disables samplers.
        self.metrics_interval_ms = metrics_interval_ms
        #: Ring-buffer capacity per sampler.
        self.metrics_max_samples = metrics_max_samples
        self.counters = CounterRegistry()
        self._tracers: list[ConnectionTracer] = []
        self._fault_tracer: ConnectionTracer | None = None
        self._cdn_tracer: ConnectionTracer | None = None
        self._samplers: list[ConnectionSampler] = []
        #: Links carrying an attached LinkSampler this drain cycle,
        #: keyed by id() — links outlive visits (the server farm keeps
        #: them per host), so drain must detach what it attached.
        self._sampled_links: dict[int, tuple[object, LinkSampler]] = {}
        #: Span recorder, or None when span recording is off.
        self.spans: SpanRecorder | None = SpanRecorder() if spans else None
        self._spans_enabled = spans
        # Batched transport totals: absorb_connection sums plain ints
        # here and drain_visit flushes them as one increment per key,
        # instead of nine registry calls per torn-down connection.
        self._absorbed = [0, 0, 0, 0, 0, 0, 0, 0.0, 0]

    # ------------------------------------------------------------------

    def connection_tracer(self, name: str, protocol: str) -> ConnectionTracer | None:
        """A registered tracer for a new connection, or ``None``.

        Returns ``None`` when tracing is disabled so the transport falls
        back to the zero-cost null tracer.
        """
        if not self.trace_enabled:
            return None
        tracer = ConnectionTracer(name, protocol)
        self._tracers.append(tracer)
        return tracer

    def fault_tracer(self) -> ConnectionTracer | None:
        """The shared tracer for ``fault:``/``recovery:`` events.

        Fault events are not tied to one connection (DNS failures and
        H3→H2 fallback span several), so the injector funnels them into
        a single per-drain-cycle tracer named ``fault-injector``.  Lazily
        re-created after every :meth:`drain_visit`.
        """
        if not self.trace_enabled:
            return None
        tracer = self._fault_tracer
        if tracer is None:
            tracer = self.connection_tracer("fault-injector", "fault")
            self._fault_tracer = tracer
        return tracer

    def cdn_tracer(self) -> ConnectionTracer | None:
        """The shared tracer for ``cache:``/``economics:`` events.

        Cache-hierarchy and byte-accounting events describe the edge
        fleet rather than one connection, so — like fault events — they
        funnel into a single per-drain-cycle tracer.  Lazily re-created
        after every :meth:`drain_visit`.
        """
        if not self.trace_enabled:
            return None
        tracer = self._cdn_tracer
        if tracer is None:
            tracer = self.connection_tracer("cdn-edge", "cache")
            self._cdn_tracer = tracer
        return tracer

    def connection_sampler(self, name: str, protocol: str) -> ConnectionSampler | None:
        """A registered metrics sampler for a new connection, or ``None``.

        ``None`` when sampling is disabled so the transport falls back
        to the zero-cost :data:`~repro.obs.metrics.NULL_SAMPLER`.
        """
        if self.metrics_interval_ms is None:
            return None
        sampler = ConnectionSampler(
            name, protocol, self.metrics_interval_ms, self.metrics_max_samples
        )
        self._samplers.append(sampler)
        return sampler

    def attach_link_sampler(self, link) -> None:
        """Attach (once per drain cycle) a metrics sampler to ``link``.

        Idempotent per link per visit; :meth:`drain_visit` detaches.
        Links belong to the long-lived server farm, so attachment is
        scoped strictly to the current visit.
        """
        if self.metrics_interval_ms is None:
            return
        key = id(link)
        if key in self._sampled_links:
            return
        if getattr(link, "sampler", None) is not None:
            return  # someone else's sampler; never steal
        sampler = LinkSampler(
            getattr(link, "name", "link") or "link",
            self.metrics_interval_ms,
            self.metrics_max_samples,
        )
        link.sampler = sampler
        self._sampled_links[key] = (link, sampler)

    def absorb_connection(self, conn) -> None:
        """Fold one finished connection's stats into the counters.

        Called by the pool at teardown (cold path), so per-packet
        accounting stays on the existing ``ConnectionStats`` fast path
        and only aggregates here; the sums are flushed to the registry
        once per visit by :meth:`drain_visit`.
        """
        stats = conn.stats
        absorbed = self._absorbed
        absorbed[0] += stats.data_packets_sent
        absorbed[1] += stats.data_packets_lost
        absorbed[2] += stats.retransmissions
        absorbed[3] += stats.acks_received
        absorbed[4] += stats.rto_events
        absorbed[5] += stats.hol_blocked_chunks
        absorbed[6] += stats.hol_stalls
        absorbed[7] += stats.hol_stall_ms
        absorbed[8] += stats.fast_path_epochs

    #: Registry keys matching the ``_absorbed`` slots, in order.
    _ABSORBED_KEYS = (
        "transport.packets.sent",
        "transport.packets.lost",
        "transport.packets.retransmitted",
        "transport.acks.received",
        "transport.pto.fired",
        "transport.hol.blocked_chunks",
        "transport.hol.stalls",
        "transport.hol.stall_ms",
        "transport.fastpath.epochs",
    )

    def _flush_absorbed(self) -> None:
        absorbed = self._absorbed
        incr = self.counters.incr
        for key, value in zip(self._ABSORBED_KEYS, absorbed):
            if value:
                incr(key, value)
        self._absorbed = [0, 0, 0, 0, 0, 0, 0, 0.0, 0]

    # ------------------------------------------------------------------

    def trace_events(self) -> list[dict]:
        """All recorded events, connection-tagged, in creation order."""
        events: list[dict] = []
        for tracer in self._tracers:
            events.extend(tracer.tagged_events())
        return events

    def metrics_records(self) -> list[dict]:
        """All recorded metrics samples, source-tagged, in attach order."""
        records: list[dict] = []
        for sampler in self._samplers:
            records.extend(sampler.records())
        for _link, sampler in self._sampled_links.values():
            records.extend(sampler.records())
        return records

    def drain_visit(
        self,
    ) -> tuple[dict | None, "TraceLog | None", list[dict] | None, list[dict] | None]:
        """Snapshot and reset: ``(counters, trace, metrics, spans)``.

        Each element is ``None`` when the corresponding layer is
        disabled.  The trace comes back as a lazy
        :class:`~repro.obs.trace.TraceLog` over the raw record tuples —
        drain itself does zero per-event work; export dicts materialize
        only if someone reads the trace.  Metrics and spans are small
        (ring-bounded / per-phase) so they materialize eagerly into
        plain picklable lists.
        """
        self._flush_absorbed()
        if self.counters_enabled:
            counters: dict | None = self.counters.to_dict()
        else:
            counters = None
        self.counters.clear()
        trace: TraceLog | None = None
        if self.trace_enabled:
            trace = TraceLog(self._tracers)
        self._tracers.clear()
        self._fault_tracer = None
        self._cdn_tracer = None
        metrics: list[dict] | None = None
        if self.metrics_interval_ms is not None:
            metrics = self.metrics_records()
        self._samplers.clear()
        for link, _sampler in self._sampled_links.values():
            link.sampler = None
        self._sampled_links.clear()
        spans: list[dict] | None = None
        if self.spans is not None:
            spans = self.spans.drain()
            self.spans = SpanRecorder()
        return counters, trace, metrics, spans
