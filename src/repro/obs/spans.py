"""Hierarchical spans: where a visit's (sim and wall) time goes.

Counters say how much, traces say what happened; spans say *where the
time went*.  The hierarchy mirrors the measurement pipeline::

    campaign → visit → phase(dns / connect / tls / request) → transfer

Each span carries both clocks: ``t0``/``t1`` are simulated
milliseconds (deterministic — identical across workers and replays)
and ``wall_ms`` is the host CPU wall-clock the simulator spent inside
the span (diagnostic only, never compared).  A
:class:`SpanRecorder` lives on the :class:`~repro.obs.context.ObsContext`
and is drained per visit like the tracers; span ids restart at 1 every
visit so the merged campaign-wide record stream is deterministic under
the same canonical ordering discipline as counters.

Spans export as plain dicts (the ``spans.jsonl`` record family, see
:mod:`repro.obs.schema`) and convert to Chrome trace-event JSON for
Perfetto via :mod:`repro.obs.export`.
"""

from __future__ import annotations

import time as _time

#: The closed set of span kinds (validated by ``repro.obs.schema``).
SPAN_KINDS: frozenset[str] = frozenset({"campaign", "visit", "phase", "transfer"})


class SpanRecorder:
    """Span collector for one probe/browser stack (one drain cycle).

    ``begin``/``end`` bracket live spans (wall-clock measured between
    the two calls); ``add`` records a retroactively-known complete span
    (e.g. the TLS share of a handshake, derived after the fact).  Spans
    missing their ``end`` by drain time — possible when fault injection
    tears a connection down mid-transfer — are discarded: every
    exported span is complete by construction.
    """

    __slots__ = ("_spans", "_wall_started", "_next_id", "current_visit")

    def __init__(self) -> None:
        self._spans: list[dict] = []
        self._wall_started: dict[int, float] = {}
        self._next_id = 1
        #: Id of the in-progress visit span, so nested layers (pool,
        #: transports) can parent their phases without plumbing ids.
        self.current_visit: int | None = None

    def __bool__(self) -> bool:
        return True

    def begin(
        self, kind: str, name: str, sim_ms: float, parent: int | None = None
    ) -> int:
        """Open a span at simulated time ``sim_ms``; returns its id."""
        span_id = self._next_id
        self._next_id = span_id + 1
        self._spans.append(
            {
                "id": span_id,
                "parent": parent,
                "kind": kind,
                "name": name,
                "t0": sim_ms,
                "t1": None,
                "wall_ms": None,
            }
        )
        self._wall_started[span_id] = _time.perf_counter()
        return span_id

    def end(self, span_id: int, sim_ms: float) -> None:
        """Close an open span at simulated time ``sim_ms``."""
        started = self._wall_started.pop(span_id, None)
        wall_ms = (
            (_time.perf_counter() - started) * 1000.0 if started is not None else 0.0
        )
        for span in reversed(self._spans):
            if span["id"] == span_id:
                span["t1"] = sim_ms
                span["wall_ms"] = wall_ms
                return

    def add(
        self,
        kind: str,
        name: str,
        t0: float,
        t1: float,
        parent: int | None = None,
        wall_ms: float = 0.0,
    ) -> int:
        """Record a complete span whose bounds are already known."""
        span_id = self._next_id
        self._next_id = span_id + 1
        self._spans.append(
            {
                "id": span_id,
                "parent": parent,
                "kind": kind,
                "name": name,
                "t0": t0,
                "t1": t1,
                "wall_ms": wall_ms,
            }
        )
        return span_id

    def drain(self) -> list[dict]:
        """Completed spans in id (creation) order; resets nothing —
        the owning :class:`ObsContext` swaps in a fresh recorder."""
        return [span for span in self._spans if span["t1"] is not None]

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpanRecorder spans={len(self._spans)}>"
