"""Best-effort builder/loader for the C kernel core (``_ckernel.c``).

The repo ships the C source, not a binary: on first import we compile
it with the host C compiler into a content-addressed cache under the
repository's ``build/`` directory (falling back to the system temp dir
when that is not writable) and load it with :mod:`importlib`.  Every
failure mode — no compiler, no headers, compile error, import error —
degrades silently to ``None`` and the pure-Python scheduler takes
over, so the accelerator can never break a checkout.

Environment knobs:

``REPRO_NO_CKERNEL=1``
    Skip the C kernel entirely (forces the pure-Python fallback).
``REPRO_CKERNEL_DEBUG=1``
    Print the reason when the C kernel is unavailable (build errors
    are otherwise swallowed).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import subprocess
import sysconfig
import tempfile

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_ckernel.c")


def _debug(message: str) -> None:
    if os.environ.get("REPRO_CKERNEL_DEBUG"):
        print(f"[repro._accel] {message}")


def _cache_dirs() -> list[str]:
    """Candidate cache roots, most preferred first."""
    repo_root = os.path.abspath(
        os.path.join(os.path.dirname(_SOURCE), "..", "..", "..")
    )
    return [
        os.path.join(repo_root, "build", "ckernel"),
        os.path.join(tempfile.gettempdir(), "repro-ckernel"),
    ]


def _build_tag(source: bytes) -> str:
    """Content address: source hash + interpreter ABI."""
    h = hashlib.blake2b(digest_size=10)
    h.update(source)
    h.update((sysconfig.get_config_var("SOABI") or "abi3").encode())
    return h.hexdigest()


def _compile(cc: str, out_path: str) -> bool:
    include = sysconfig.get_paths()["include"]
    tmp = f"{out_path}.tmp.{os.getpid()}"
    cmd = [
        cc, "-O2", "-fPIC", "-shared",
        f"-I{include}", _SOURCE, "-o", tmp,
    ]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=180, check=False
        )
    except (OSError, subprocess.SubprocessError) as exc:
        _debug(f"compile failed to run: {exc}")
        return False
    if proc.returncode != 0:
        _debug(f"compile failed:\n{proc.stderr}")
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False
    # Atomic publish: concurrent builders race benignly.
    os.replace(tmp, out_path)
    return True


def load():
    """Compile (if needed) and import the C kernel, or return ``None``."""
    if os.environ.get("REPRO_NO_CKERNEL"):
        return None
    try:
        with open(_SOURCE, "rb") as handle:
            source = handle.read()
    except OSError:
        _debug("C source missing")
        return None
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    name = f"_ckernel-{_build_tag(source)}{suffix}"
    so_path = None
    for root in _cache_dirs():
        candidate = os.path.join(root, name)
        if os.path.exists(candidate):
            so_path = candidate
            break
    if so_path is None:
        cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
        if cc is None:
            _debug("no C compiler on PATH")
            return None
        for root in _cache_dirs():
            try:
                os.makedirs(root, exist_ok=True)
            except OSError:
                continue
            candidate = os.path.join(root, name)
            if _compile(cc, candidate):
                so_path = candidate
                break
        if so_path is None:
            return None
    try:
        spec = importlib.util.spec_from_file_location(
            "repro.events._ckernel", so_path
        )
        if spec is None or spec.loader is None:
            return None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    except Exception as exc:  # pragma: no cover - host-specific breakage
        _debug(f"import failed: {exc}")
        return None
    return module
