"""Discrete-event simulation kernel.

Everything in :mod:`repro` that models time — links, transports, servers,
browsers — runs on top of this small kernel.  Time is a floating point
number of **milliseconds** since the start of the simulation.

The kernel is deliberately minimal: a priority queue of timestamped
callbacks with deterministic FIFO tie-breaking.  Determinism matters
because the reproduction study relies on seeded runs being exactly
repeatable across probes and campaigns.
"""

from repro.events.loop import EventLoop, ScheduledEvent, SimulationError, Timer

__all__ = ["EventLoop", "ScheduledEvent", "SimulationError", "Timer"]
