/* C core for the DES kernel: the optional accelerated scheduler.
 *
 * Compiled on demand by repro/events/_accel.py with the host
 * toolchain; when unavailable the pure-Python CalendarEventLoop takes
 * over with identical semantics.  The contract both sides implement:
 *
 *   - time is a double (milliseconds); events fire in (time, seq)
 *     order, seq being a monotonically increasing tie-breaker, so
 *     same-timestamp events preserve scheduling order (FIFO).
 *   - cancellation is lazy: cancel() marks the entry dead and fixes
 *     the live count; the corpse is discarded when it surfaces.
 *   - run/step/run_until/max_events semantics match
 *     repro.events.loop._LoopBase exactly (see its docstrings).
 *
 * Inside C the queue is an implicit binary heap of plain structs:
 * entry comparisons cost nanoseconds here, so the calendar layout the
 * Python fallback uses to dodge interpreter-priced comparisons buys
 * nothing — the win lives in keeping push/pop/dispatch out of
 * bytecode entirely.  Results are bit-identical across all three
 * schedulers because they realise the same total order over the same
 * IEEE doubles.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <time.h>

/* Installed by the loader: repro.events.loop.SimulationError, so C
 * raises the exact class the Python schedulers raise. */
static PyObject *SimulationError = NULL;

typedef struct LoopCoreObject LoopCoreObject;

/* ------------------------------------------------------------------ */
/* ScheduledEvent: the cancellable handle call_later/call_at return.   */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double time;
    long long seq;
    PyObject *callback;       /* strong */
    PyObject *args;           /* strong, tuple */
    char cancelled;
    /* Borrowed "still pending" marker: non-NULL iff the event sits in
     * its loop's heap (which then holds a strong ref to us, keeping
     * the loop alive transitively for the caller).  Cleared on pop and
     * on cancel so the live counter stays exact under double-cancels
     * and cancels of already-fired events; the loop clears it for
     * every queued event before releasing the queue. */
    LoopCoreObject *loop;
} CEventObject;

static PyTypeObject CEventType;

typedef struct { double time; long long seq; CEventObject *ev; } HeapEntry;

struct LoopCoreObject {
    PyObject_HEAD
    double now;
    long long seq;
    long long processed;
    long long live;
    /* Implicit binary min-heap ordered by (time, seq). */
    HeapEntry *heap;
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
    PyObject *check;          /* strong, or NULL when checking is off */
    PyObject *check_require;  /* bound check.require, cached */
    PyObject *profile;        /* dict, or NULL when profiling is off */
};

static PyObject *
cevent_cancel(CEventObject *self, PyObject *Py_UNUSED(ignored))
{
    self->cancelled = 1;
    LoopCoreObject *loop = self->loop;
    if (loop != NULL) {
        self->loop = NULL;
        loop->live--;
    }
    Py_RETURN_NONE;
}

static PyObject *
cevent_repr(CEventObject *self)
{
    PyObject *t = PyFloat_FromDouble(self->time);
    if (t == NULL)
        return NULL;
    PyObject *out = PyUnicode_FromFormat(
        "<ScheduledEvent t=%R seq=%lld %s>",
        t, self->seq, self->cancelled ? "cancelled" : "pending");
    Py_DECREF(t);
    return out;
}

static int
cevent_traverse(CEventObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->args);
    return 0;
}

static int
cevent_clear_gc(CEventObject *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->args);
    return 0;
}

static void
cevent_dealloc(CEventObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->callback);
    Py_XDECREF(self->args);
    PyObject_GC_Del(self);
}

static PyObject *
cevent_get_cancelled(CEventObject *self, void *closure)
{
    return PyBool_FromLong(self->cancelled);
}

static PyMemberDef cevent_members[] = {
    {"time", T_DOUBLE, offsetof(CEventObject, time), READONLY,
     "Absolute fire time in ms."},
    {"seq", T_LONGLONG, offsetof(CEventObject, seq), READONLY,
     "FIFO tie-breaker."},
    {"callback", T_OBJECT_EX, offsetof(CEventObject, callback), READONLY, NULL},
    {"args", T_OBJECT_EX, offsetof(CEventObject, args), READONLY, NULL},
    {NULL}
};

static PyGetSetDef cevent_getset[] = {
    {"cancelled", (getter)cevent_get_cancelled, NULL,
     "Whether cancel() was called.", NULL},
    {NULL}
};

static PyMethodDef cevent_methods[] = {
    {"cancel", (PyCFunction)cevent_cancel, METH_NOARGS,
     "Mark the event dead; it will be skipped when popped."},
    {NULL}
};

static PyTypeObject CEventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.events._ckernel.ScheduledEvent",
    .tp_basicsize = sizeof(CEventObject),
    .tp_dealloc = (destructor)cevent_dealloc,
    .tp_repr = (reprfunc)cevent_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A single entry in the event queue (C-accelerated).",
    .tp_traverse = (traverseproc)cevent_traverse,
    .tp_clear = (inquiry)cevent_clear_gc,
    .tp_methods = cevent_methods,
    .tp_members = cevent_members,
    .tp_getset = cevent_getset,
};

/* ------------------------------------------------------------------ */
/* Heap primitives                                                     */
/* ------------------------------------------------------------------ */

static inline int
entry_less(double at, long long aseq, double bt, long long bseq)
{
    if (at != bt)
        return at < bt;
    return aseq < bseq;
}

static int
heap_push(LoopCoreObject *self, double t, long long seq, CEventObject *ev)
{
    if (self->heap_len == self->heap_cap) {
        Py_ssize_t cap = self->heap_cap ? self->heap_cap * 2 : 64;
        HeapEntry *mem = PyMem_Realloc(self->heap, cap * sizeof(HeapEntry));
        if (mem == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        self->heap = mem;
        self->heap_cap = cap;
    }
    HeapEntry *h = self->heap;
    Py_ssize_t i = self->heap_len++;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (!entry_less(t, seq, h[parent].time, h[parent].seq))
            break;
        h[i] = h[parent];
        i = parent;
    }
    h[i].time = t;
    h[i].seq = seq;
    h[i].ev = ev;
    return 0;
}

/* Pop the root.  Caller owns the returned entry's ev reference. */
static HeapEntry
heap_pop(LoopCoreObject *self)
{
    HeapEntry *h = self->heap;
    HeapEntry top = h[0];
    Py_ssize_t n = --self->heap_len;
    if (n > 0) {
        HeapEntry last = h[n];
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n &&
                entry_less(h[child + 1].time, h[child + 1].seq,
                           h[child].time, h[child].seq))
                child++;
            if (!entry_less(h[child].time, h[child].seq, last.time, last.seq))
                break;
            h[i] = h[child];
            i = child;
        }
        h[i] = last;
    }
    return top;
}

/* Discard cancelled entries at the root; returns the live head
 * (borrowed) or NULL when the queue is empty. */
static CEventObject *
peek_live(LoopCoreObject *self)
{
    while (self->heap_len) {
        HeapEntry *h = self->heap;
        if (!h[0].ev->cancelled)
            return h[0].ev;
        HeapEntry dead = heap_pop(self);
        dead.ev->loop = NULL;  /* already NULL: cancel() clears it */
        Py_DECREF(dead.ev);
    }
    return NULL;
}

/* ------------------------------------------------------------------ */
/* LoopCore                                                            */
/* ------------------------------------------------------------------ */

static void
core_release_queue(LoopCoreObject *self)
{
    /* NULL every queued event's loop pointer before dropping the
     * references: handles that escaped to Python must never touch a
     * dead loop through cancel(). */
    HeapEntry *h = self->heap;
    Py_ssize_t n = self->heap_len;
    self->heap_len = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        h[i].ev->loop = NULL;
        Py_DECREF(h[i].ev);
    }
}

static PyObject *
core_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    LoopCoreObject *self = (LoopCoreObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->now = 0.0;
    self->seq = 0;
    self->processed = 0;
    self->live = 0;
    self->heap = NULL;
    self->heap_len = 0;
    self->heap_cap = 0;
    self->check = NULL;
    self->check_require = NULL;
    self->profile = NULL;
    return (PyObject *)self;
}

static int
core_traverse(LoopCoreObject *self, visitproc visit, void *arg)
{
    HeapEntry *h = self->heap;
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        Py_VISIT(h[i].ev);
    Py_VISIT(self->check);
    Py_VISIT(self->check_require);
    Py_VISIT(self->profile);
    return 0;
}

static int
core_clear_gc(LoopCoreObject *self)
{
    core_release_queue(self);
    Py_CLEAR(self->check);
    Py_CLEAR(self->check_require);
    Py_CLEAR(self->profile);
    return 0;
}

static void
core_dealloc(LoopCoreObject *self)
{
    PyObject_GC_UnTrack(self);
    core_release_queue(self);
    PyMem_Free(self->heap);
    Py_XDECREF(self->check);
    Py_XDECREF(self->check_require);
    Py_XDECREF(self->profile);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
schedule(LoopCoreObject *self, double t, PyObject *callback,
         PyObject *const *extra, Py_ssize_t n_extra)
{
    PyObject *args = PyTuple_New(n_extra);
    if (args == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < n_extra; i++) {
        Py_INCREF(extra[i]);
        PyTuple_SET_ITEM(args, i, extra[i]);
    }
    CEventObject *ev = PyObject_GC_New(CEventObject, &CEventType);
    if (ev == NULL) {
        Py_DECREF(args);
        return NULL;
    }
    long long seq = ++self->seq;
    ev->time = t;
    ev->seq = seq;
    Py_INCREF(callback);
    ev->callback = callback;
    ev->args = args;
    ev->cancelled = 0;
    ev->loop = self;
    PyObject_GC_Track((PyObject *)ev);
    Py_INCREF(ev);  /* the heap's reference */
    if (heap_push(self, t, seq, ev) < 0) {
        self->seq--;
        ev->loop = NULL;
        Py_DECREF(ev);
        Py_DECREF(ev);
        return NULL;
    }
    self->live++;
    return (PyObject *)ev;
}

static PyObject *
core_call_later(LoopCoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "call_later(delay_ms, callback, *args)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(SimulationError,
                     "cannot schedule %Rms in the past", args[0]);
        return NULL;
    }
    return schedule(self, self->now + delay, args[1], args + 2, nargs - 2);
}

static PyObject *
core_call_at(LoopCoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "call_at(time_ms, callback, *args)");
        return NULL;
    }
    double t = PyFloat_AsDouble(args[0]);
    if (t == -1.0 && PyErr_Occurred())
        return NULL;
    if (t < self->now) {
        PyObject *nowf = PyFloat_FromDouble(self->now);
        if (nowf == NULL)
            return NULL;
        PyErr_Format(SimulationError,
                     "cannot schedule at %Rms, already at %Rms",
                     args[0], nowf);
        Py_DECREF(nowf);
        return NULL;
    }
    return schedule(self, t, args[1], args + 2, nargs - 2);
}

/* Run one event's callback, advancing the clock first.  The entry's
 * ev reference stays owned by the caller.  Returns -1 on exception. */
static int
execute_event(LoopCoreObject *self, CEventObject *ev)
{
    if (self->check != NULL) {
        /* Mirror _LoopBase._execute: always call require so strict
         * runs count this check, passing the verdict as a bool. */
        PyObject *cond = PyBool_FromLong(ev->time >= self->now);
        PyObject *cargs = Py_BuildValue(
            "(Oss)", cond, "loop:time_monotonic",
            "popped an event scheduled in the past");
        Py_DECREF(cond);
        if (cargs == NULL)
            return -1;
        PyObject *kwargs = Py_BuildValue("{s:d,s:d}",
                                         "time_ms", self->now,
                                         "event_time_ms", ev->time);
        if (kwargs == NULL) {
            Py_DECREF(cargs);
            return -1;
        }
        PyObject *res = PyObject_Call(self->check_require, cargs, kwargs);
        Py_DECREF(cargs);
        Py_DECREF(kwargs);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
    }
    self->now = ev->time;
    self->processed++;
    PyObject *res;
    if (self->profile == NULL) {
        if (PyTuple_GET_SIZE(ev->args) == 0)
            res = PyObject_CallNoArgs(ev->callback);
        else
            res = PyObject_CallObject(ev->callback, ev->args);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    /* Profiled dispatch: attribute wall-clock to the callback name. */
    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    res = PyObject_CallObject(ev->callback, ev->args);
    clock_gettime(CLOCK_MONOTONIC, &t1);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    double elapsed = (double)(t1.tv_sec - t0.tv_sec)
                     + (double)(t1.tv_nsec - t0.tv_nsec) * 1e-9;
    PyObject *key = PyObject_GetAttrString(ev->callback, "__qualname__");
    if (key == NULL) {
        PyErr_Clear();
        key = PyObject_Repr(ev->callback);
    }
    else if (!PyObject_IsTrue(key)) {
        Py_DECREF(key);
        key = PyObject_Repr(ev->callback);
    }
    if (key == NULL)
        return -1;
    PyObject *entry = PyDict_GetItemWithError(self->profile, key);
    if (entry == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(key);
            return -1;
        }
        entry = Py_BuildValue("[id]", 1, elapsed);
        int rc = entry ? PyDict_SetItem(self->profile, key, entry) : -1;
        Py_XDECREF(entry);
        Py_DECREF(key);
        return rc;
    }
    Py_DECREF(key);
    long long n = PyLong_AsLongLong(PyList_GET_ITEM(entry, 0));
    double secs = PyFloat_AsDouble(PyList_GET_ITEM(entry, 1));
    if (PyErr_Occurred())
        return -1;
    PyObject *count = PyLong_FromLongLong(n + 1);
    if (count == NULL)
        return -1;
    PyObject *total = PyFloat_FromDouble(secs + elapsed);
    if (total == NULL) {
        Py_DECREF(count);
        return -1;
    }
    PyList_SetItem(entry, 0, count);
    PyList_SetItem(entry, 1, total);
    return 0;
}

static PyObject *
core_run(LoopCoreObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until_ms", "max_events", NULL};
    PyObject *until_obj = Py_None, *max_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO", kwlist,
                                     &until_obj, &max_obj))
        return NULL;
    int until_set = until_obj != Py_None;
    double until = 0.0;
    if (until_set) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    int max_set = max_obj != Py_None;
    long long max_events = 0;
    if (max_set) {
        max_events = PyLong_AsLongLong(max_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }
    long long executed = 0;
    for (;;) {
        CEventObject *head = peek_live(self);
        if (head == NULL)
            Py_RETURN_NONE;
        if (until_set && head->time > until) {
            self->now = until;
            Py_RETURN_NONE;
        }
        if (max_set && executed >= max_events) {
            PyErr_Format(SimulationError,
                         "exceeded %lld events; likely livelock",
                         max_events);
            return NULL;
        }
        HeapEntry e = heap_pop(self);
        e.ev->loop = NULL;
        self->live--;
        executed++;
        int rc = execute_event(self, e.ev);
        Py_DECREF(e.ev);
        if (rc < 0)
            return NULL;
    }
}

static PyObject *
core_step(LoopCoreObject *self, PyObject *Py_UNUSED(ignored))
{
    if (peek_live(self) == NULL)
        Py_RETURN_FALSE;
    HeapEntry e = heap_pop(self);
    e.ev->loop = NULL;
    self->live--;
    int rc = execute_event(self, e.ev);
    Py_DECREF(e.ev);
    if (rc < 0)
        return NULL;
    Py_RETURN_TRUE;
}

static PyObject *
core_run_until(LoopCoreObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"predicate", "max_events", NULL};
    PyObject *predicate;
    long long max_events = 50000000LL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|L", kwlist,
                                     &predicate, &max_events))
        return NULL;
    long long executed = 0;
    for (;;) {
        PyObject *verdict = PyObject_CallNoArgs(predicate);
        if (verdict == NULL)
            return NULL;
        int done = PyObject_IsTrue(verdict);
        Py_DECREF(verdict);
        if (done < 0)
            return NULL;
        if (done)
            Py_RETURN_NONE;
        if (executed >= max_events) {
            PyErr_Format(SimulationError,
                         "exceeded %lld events; likely livelock",
                         max_events);
            return NULL;
        }
        if (peek_live(self) == NULL)
            Py_RETURN_NONE;
        HeapEntry e = heap_pop(self);
        e.ev->loop = NULL;
        self->live--;
        int rc = execute_event(self, e.ev);
        Py_DECREF(e.ev);
        if (rc < 0)
            return NULL;
        executed++;
    }
}

static PyObject *
core_set_check(LoopCoreObject *self, PyObject *check)
{
    int truthy = PyObject_IsTrue(check);
    if (truthy < 0)
        return NULL;
    Py_CLEAR(self->check);
    Py_CLEAR(self->check_require);
    if (truthy) {
        PyObject *require = PyObject_GetAttrString(check, "require");
        if (require == NULL)
            return NULL;
        Py_INCREF(check);
        self->check = check;
        self->check_require = require;
    }
    Py_RETURN_NONE;
}

static PyObject *
core_enable_profiling(LoopCoreObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->profile == NULL) {
        self->profile = PyDict_New();
        if (self->profile == NULL)
            return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
core_disable_profiling(LoopCoreObject *self, PyObject *Py_UNUSED(ignored))
{
    Py_CLEAR(self->profile);
    Py_RETURN_NONE;
}

static PyObject *
core_profile_raw(LoopCoreObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->profile == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->profile);
    return self->profile;
}

static PyObject *
core_next_event_time(LoopCoreObject *self, PyObject *Py_UNUSED(ignored))
{
    CEventObject *head = peek_live(self);
    if (head == NULL)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(head->time);
}

static PyObject *
core_get_now(LoopCoreObject *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
core_get_processed(LoopCoreObject *self, void *closure)
{
    return PyLong_FromLongLong(self->processed);
}

static PyObject *
core_get_profiling(LoopCoreObject *self, void *closure)
{
    return PyBool_FromLong(self->profile != NULL);
}

static PyObject *
core_get_check(LoopCoreObject *self, void *closure)
{
    if (self->check == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->check);
    return self->check;
}

static Py_ssize_t
core_length(LoopCoreObject *self)
{
    return (Py_ssize_t)self->live;
}

static PySequenceMethods core_as_sequence = {
    .sq_length = (lenfunc)core_length,
};

static PyMethodDef core_methods[] = {
    {"call_later", (PyCFunction)(void (*)(void))core_call_later,
     METH_FASTCALL,
     "Schedule callback(*args) to run delay_ms from now."},
    {"call_at", (PyCFunction)(void (*)(void))core_call_at,
     METH_FASTCALL,
     "Schedule callback(*args) at absolute time time_ms."},
    {"run", (PyCFunction)(void (*)(void))core_run,
     METH_VARARGS | METH_KEYWORDS,
     "Run events until the queue drains (see _LoopBase.run)."},
    {"run_until", (PyCFunction)(void (*)(void))core_run_until,
     METH_VARARGS | METH_KEYWORDS,
     "Run until predicate() becomes true or the queue drains."},
    {"step", (PyCFunction)core_step, METH_NOARGS,
     "Execute the next pending event; False when the queue is empty."},
    {"next_event_time", (PyCFunction)core_next_event_time, METH_NOARGS,
     "Time of the earliest pending live event, or None when empty."},
    {"set_check", (PyCFunction)core_set_check, METH_O,
     "Install (or clear) a repro.check.CheckContext."},
    {"enable_profiling", (PyCFunction)core_enable_profiling, METH_NOARGS,
     "Start attributing wall-clock time and counts per callback."},
    {"disable_profiling", (PyCFunction)core_disable_profiling, METH_NOARGS,
     "Stop profiling and drop collected data."},
    {"_profile_raw", (PyCFunction)core_profile_raw, METH_NOARGS,
     "Raw {qualname: [count, total_seconds]} dict, or None."},
    {NULL}
};

static PyGetSetDef core_getset[] = {
    {"now", (getter)core_get_now, NULL,
     "Current simulated time in milliseconds.", NULL},
    {"processed_events", (getter)core_get_processed, NULL,
     "Number of events executed so far.", NULL},
    {"profiling_enabled", (getter)core_get_profiling, NULL, NULL, NULL},
    {"_check", (getter)core_get_check, NULL,
     "The installed CheckContext, or None.", NULL},
    {NULL}
};

static PyTypeObject LoopCoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.events._ckernel.LoopCore",
    .tp_basicsize = sizeof(LoopCoreObject),
    .tp_dealloc = (destructor)core_dealloc,
    .tp_as_sequence = &core_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "C-accelerated DES scheduler core.",
    .tp_traverse = (traverseproc)core_traverse,
    .tp_clear = (inquiry)core_clear_gc,
    .tp_methods = core_methods,
    .tp_getset = core_getset,
    .tp_new = core_new,
};

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static PyObject *
ckernel_install(PyObject *module, PyObject *exc)
{
    Py_INCREF(exc);
    Py_XSETREF(SimulationError, exc);
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"_install", ckernel_install, METH_O,
     "Install the SimulationError class raised by the schedulers."},
    {NULL}
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_ckernel",
    .m_doc = "C core for the repro DES kernel.",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if (PyType_Ready(&CEventType) < 0)
        return NULL;
    if (PyType_Ready(&LoopCoreType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&ckernel_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&LoopCoreType);
    if (PyModule_AddObject(m, "LoopCore", (PyObject *)&LoopCoreType) < 0) {
        Py_DECREF(&LoopCoreType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&CEventType);
    if (PyModule_AddObject(m, "ScheduledEvent", (PyObject *)&CEventType) < 0) {
        Py_DECREF(&CEventType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
