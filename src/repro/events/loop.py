"""The event loop at the heart of the simulator.

Design notes
------------

* Time is a ``float`` in milliseconds.  All higher layers (links,
  transports, the browser) express delays in the same unit so there is
  never a conversion step.
* Events scheduled for the same instant fire in the order they were
  scheduled (FIFO).  This is achieved with a monotonically increasing
  sequence number used as a tie-breaker in the heap.
* Events can be cancelled.  Cancellation is O(1): the heap entry is
  marked dead and skipped when popped.  This is the standard "lazy
  deletion" approach and is what retransmission timers rely on.
* This is the simulator's innermost loop — a full campaign pushes tens
  of millions of events through it — so :class:`ScheduledEvent` is a
  ``__slots__`` class with a hand-written ``__lt__`` (a dataclass with
  ``order=True`` pays for generated tuple comparisons and a ``__dict__``
  per event), and the loop keeps a live-event counter so ``len(loop)``
  is O(1).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class ScheduledEvent:
    """A single entry in the event queue.

    Instances are ordered by ``(time, seq)`` so that simultaneous events
    preserve scheduling order.  ``callback`` and ``args`` are excluded
    from comparisons.  ``_loop`` doubles as the "still pending" marker:
    it is cleared when the event is popped (executed or discarded) so
    the loop's live-event counter stays exact under double-cancels and
    cancels of already-fired events.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_loop")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        loop: "EventLoop | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._loop = loop

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True
        loop = self._loop
        if loop is not None:
            self._loop = None
            loop._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time} seq={self.seq} {state}>"


class Timer:
    """A restartable one-shot timer bound to an :class:`EventLoop`.

    Transports use timers for retransmission timeouts: ``start`` arms the
    timer, ``stop`` disarms it, and re-arming implicitly cancels the
    previous deadline.
    """

    __slots__ = ("_loop", "_callback", "_event")

    def __init__(self, loop: "EventLoop", callback: Callable[[], None]) -> None:
        self._loop = loop
        self._callback = callback
        self._event: ScheduledEvent | None = None

    @property
    def armed(self) -> bool:
        """Whether the timer currently has a pending deadline."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay_ms: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay_ms`` from now."""
        self.stop()
        self._event = self._loop.call_later(delay_ms, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class EventLoop:
    """A deterministic discrete-event scheduler.

    Example
    -------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.call_later(5.0, fired.append, "a")
    >>> _ = loop.call_later(2.0, fired.append, "b")
    >>> loop.run()
    >>> fired
    ['b', 'a']
    >>> loop.now
    5.0
    """

    def __init__(self) -> None:
        self._queue: list[ScheduledEvent] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        # Live (scheduled, not cancelled) events; maintained on push,
        # cancel and pop so __len__ is O(1).
        self._live = 0
        # Callback profiling: None (off, the default — the dispatch
        # loops stay branch-only) or a dict mapping callback qualname
        # to [count, total_seconds].
        self._profile: dict[str, list] | None = None
        # Invariant checking (strict mode): None keeps the dispatch
        # loops branch-only; set_check() installs a CheckContext and
        # every pop verifies time monotonicity before advancing.
        self._check = None

    def set_check(self, check) -> None:
        """Install (or clear) a :class:`repro.check.CheckContext`.

        ``call_later``/``call_at`` already refuse to schedule in the
        past; the per-pop check additionally catches heap corruption or
        events pushed behind the clock's back.
        """
        self._check = check if check else None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics/benchmarks)."""
        return self._processed

    def __len__(self) -> int:
        return self._live

    # -- callback profiling --------------------------------------------

    def enable_profiling(self) -> None:
        """Start attributing wall-clock time and counts per callback.

        Profiling reads only the host clock — it never touches simulated
        time or scheduling order, so enabling it cannot change results.
        """
        if self._profile is None:
            self._profile = {}

    def disable_profiling(self) -> None:
        """Stop profiling and drop collected data."""
        self._profile = None

    @property
    def profiling_enabled(self) -> bool:
        return self._profile is not None

    def profile_stats(self) -> dict[str, dict]:
        """Per-callback-name ``{"count", "total_ms"}``, sorted by time.

        Callback names are ``__qualname__`` (bound methods keep their
        class, lambdas show their defining scope).
        """
        if self._profile is None:
            return {}
        return {
            name: {"count": entry[0], "total_ms": entry[1] * 1000.0}
            for name, entry in sorted(
                self._profile.items(), key=lambda item: -item[1][1]
            )
        }

    def _profiled_call(self, event: ScheduledEvent) -> None:
        profile = self._profile
        assert profile is not None
        callback = event.callback
        start = perf_counter()
        callback(*event.args)
        elapsed = perf_counter() - start
        key = getattr(callback, "__qualname__", None) or repr(callback)
        entry = profile.get(key)
        if entry is None:
            profile[key] = [1, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed

    def call_later(
        self, delay_ms: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule {delay_ms}ms in the past")
        self._seq += 1
        event = ScheduledEvent(self._now + delay_ms, self._seq, callback, args, self)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def call_at(
        self, time_ms: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute time ``time_ms``."""
        if time_ms < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ms}ms, already at {self._now}ms"
            )
        self._seq += 1
        event = ScheduledEvent(time_ms, self._seq, callback, args, self)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was
        empty (dead entries are skipped silently).
        """
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)
            if event.cancelled:
                continue
            event._loop = None
            self._live -= 1
            if self._check is not None:
                self._check.require(
                    event.time >= self._now,
                    "loop:time_monotonic",
                    "popped an event scheduled in the past",
                    time_ms=self._now,
                    event_time_ms=event.time,
                )
            self._now = event.time
            self._processed += 1
            if self._profile is None:
                event.callback(*event.args)
            else:
                self._profiled_call(event)
            return True
        return False

    def run(self, until_ms: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains.

        Parameters
        ----------
        until_ms:
            Stop once simulated time would pass this point.  Events at
            exactly ``until_ms`` still run.
        max_events:
            Safety valve against runaway simulations; raises
            :class:`SimulationError` as soon as a pending event would
            exceed the bound, so exactly ``max_events`` events execute
            before the error.
        """
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        while queue:
            event = queue[0]
            if event.cancelled:
                pop(queue)
                continue
            if until_ms is not None and event.time > until_ms:
                self._now = until_ms
                return
            if max_events is not None and executed >= max_events:
                raise SimulationError(f"exceeded {max_events} events; likely livelock")
            pop(queue)
            event._loop = None
            self._live -= 1
            if self._check is not None:
                self._check.require(
                    event.time >= self._now,
                    "loop:time_monotonic",
                    "popped an event scheduled in the past",
                    time_ms=self._now,
                    event_time_ms=event.time,
                )
            self._now = event.time
            self._processed += 1
            executed += 1
            if self._profile is None:
                event.callback(*event.args)
            else:
                self._profiled_call(event)

    def run_until(self, predicate: Callable[[], bool], max_events: int = 50_000_000) -> None:
        """Run until ``predicate()`` becomes true or the queue drains.

        Raises :class:`SimulationError` if the predicate is still false
        after exactly ``max_events`` events have executed.
        """
        executed = 0
        step = self.step
        while not predicate():
            if executed >= max_events:
                raise SimulationError(f"exceeded {max_events} events; likely livelock")
            if not step():
                return
            executed += 1

    def _peek(self) -> ScheduledEvent | None:
        queue = self._queue
        while queue:
            head = queue[0]
            if head.cancelled:
                heapq.heappop(queue)
                continue
            return head
        return None
