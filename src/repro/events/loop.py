"""The event loop at the heart of the simulator.

Design notes
------------

* Time is a ``float`` in milliseconds.  All higher layers (links,
  transports, the browser) express delays in the same unit so there is
  never a conversion step.
* Events scheduled for the same instant fire in the order they were
  scheduled (FIFO).  This is achieved with a monotonically increasing
  sequence number used as a tie-breaker.
* Events can be cancelled.  Cancellation is O(1): the entry is marked
  dead and skipped (or purged in bulk) when its bucket drains.  This is
  the standard "lazy deletion" approach and is what retransmission
  timers rely on.

Two scheduler implementations share one API:

:class:`CalendarEventLoop` (the default ``EventLoop``)
    A calendar queue (Brown 1988) crossed with a timer wheel: a ring of
    fixed-width buckets covers the near future, a small binary heap of
    plain tuples absorbs far-future deadlines (handshake backoff, PTO
    towers), and the bucket under the cursor is drained through a
    sorted run.  Push is O(1), pop is amortized O(1), and — crucially
    for the delayed-ack/PTO churn the transports generate — an event
    that is cancelled before its bucket drains is dropped during the
    bulk purge-and-sort, never sifted through a heap.  Bucket geometry
    (1 ms × 1024) is sized to the observed timer distribution: ack
    timers (5 ms), RTTs (tens of ms) and PTOs (hundreds of ms) all land
    inside the wheel horizon; only exponential-backoff tails spill to
    the overflow heap.
:class:`HeapEventLoop`
    The original binary-heap loop, kept as the differential baseline:
    the edge-case suite runs against both, and benches record both so
    the calendar queue's advantage stays measured, not assumed.

Set ``REPRO_EVENT_LOOP=heap`` in the environment to make ``EventLoop``
an alias for the heap implementation (an A/B lever for benches and
bisection; results are bit-identical either way because both schedulers
implement the same (time, seq) total order).
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from time import perf_counter
from typing import Any, Callable

#: Calendar-queue geometry: bucket width in ms and ring size (a power
#: of two).  The wheel horizon is ``_BUCKET_WIDTH_MS * _NUM_BUCKETS``
#: (1024 ms): wide enough that delayed acks, RTT-scale deliveries and
#: first-shot PTOs stay on the O(1) ring, narrow enough that one
#: bucket rarely holds more than a handful of co-scheduled events.
_BUCKET_WIDTH_MS = 1.0
_NUM_BUCKETS = 1024
_BUCKET_MASK = _NUM_BUCKETS - 1
_INV_WIDTH = 1.0 / _BUCKET_WIDTH_MS


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class ScheduledEvent:
    """A single entry in the event queue.

    Instances are ordered by ``(time, seq)`` so that simultaneous events
    preserve scheduling order.  ``callback`` and ``args`` are excluded
    from comparisons.  ``_loop`` doubles as the "still pending" marker:
    it is cleared when the event is popped (executed or discarded) so
    the loop's live-event counter stays exact under double-cancels and
    cancels of already-fired events.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_loop")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        loop: "EventLoop | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._loop = loop

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True
        loop = self._loop
        if loop is not None:
            self._loop = None
            loop._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time} seq={self.seq} {state}>"


class Timer:
    """A restartable one-shot timer bound to an :class:`EventLoop`.

    Transports use timers for retransmission timeouts: ``start`` arms the
    timer, ``stop`` disarms it, and re-arming implicitly cancels the
    previous deadline.
    """

    __slots__ = ("_loop", "_callback", "_event")

    def __init__(self, loop: "EventLoop", callback: Callable[[], None]) -> None:
        self._loop = loop
        self._callback = callback
        self._event: ScheduledEvent | None = None

    @property
    def armed(self) -> bool:
        """Whether the timer currently has a pending deadline."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay_ms: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay_ms`` from now."""
        self.stop()
        self._event = self._loop.call_later(delay_ms, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class _LoopBase:
    """State and API shared by both scheduler implementations."""

    def __init__(self) -> None:
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        # Live (scheduled, not cancelled) events; maintained on push,
        # cancel and pop so __len__ is O(1).
        self._live = 0
        # Callback profiling: None (off, the default — the dispatch
        # loops stay branch-only) or a dict mapping callback qualname
        # to [count, total_seconds].
        self._profile: dict[str, list] | None = None
        # Invariant checking (strict mode): None keeps the dispatch
        # loops branch-only; set_check() installs a CheckContext and
        # every pop verifies time monotonicity before advancing.
        self._check = None

    def set_check(self, check) -> None:
        """Install (or clear) a :class:`repro.check.CheckContext`.

        ``call_later``/``call_at`` already refuse to schedule in the
        past; the per-pop check additionally catches queue corruption or
        events pushed behind the clock's back.
        """
        self._check = check if check else None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics/benchmarks)."""
        return self._processed

    def __len__(self) -> int:
        return self._live

    # -- callback profiling --------------------------------------------

    def enable_profiling(self) -> None:
        """Start attributing wall-clock time and counts per callback.

        Profiling reads only the host clock — it never touches simulated
        time or scheduling order, so enabling it cannot change results.
        """
        if self._profile is None:
            self._profile = {}

    def disable_profiling(self) -> None:
        """Stop profiling and drop collected data."""
        self._profile = None

    @property
    def profiling_enabled(self) -> bool:
        return self._profile is not None

    def profile_stats(self) -> dict[str, dict]:
        """Per-callback-name ``{"count", "total_ms"}``, sorted by time.

        Callback names are ``__qualname__`` (bound methods keep their
        class, lambdas show their defining scope).
        """
        if self._profile is None:
            return {}
        return {
            name: {"count": entry[0], "total_ms": entry[1] * 1000.0}
            for name, entry in sorted(
                self._profile.items(), key=lambda item: -item[1][1]
            )
        }

    def _profiled_call(self, event: ScheduledEvent) -> None:
        profile = self._profile
        assert profile is not None
        callback = event.callback
        start = perf_counter()
        callback(*event.args)
        elapsed = perf_counter() - start
        key = getattr(callback, "__qualname__", None) or repr(callback)
        entry = profile.get(key)
        if entry is None:
            profile[key] = [1, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed

    def _execute(self, event: ScheduledEvent) -> None:
        """Advance the clock to ``event`` and run its callback."""
        if self._check is not None:
            self._check.require(
                event.time >= self._now,
                "loop:time_monotonic",
                "popped an event scheduled in the past",
                time_ms=self._now,
                event_time_ms=event.time,
            )
        self._now = event.time
        self._processed += 1
        if self._profile is None:
            event.callback(*event.args)
        else:
            self._profiled_call(event)

    # -- implementation hooks ------------------------------------------

    def call_later(
        self, delay_ms: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay_ms`` from now."""
        raise NotImplementedError

    def call_at(
        self, time_ms: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute time ``time_ms``."""
        raise NotImplementedError

    def _peek(self) -> ScheduledEvent | None:
        """The next live event without executing it (purges dead ones)."""
        raise NotImplementedError

    def next_event_time(self) -> float | None:
        """Time of the earliest pending live event, or ``None`` if empty.

        The transport fast path uses this to decide how far it may walk
        analytically before yielding back to the scheduler: it never
        advances its virtual clock past a pending real event.
        """
        event = self._peek()
        return None if event is None else event.time

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was
        empty (dead entries are skipped silently).
        """
        event = self._peek()
        if event is None:
            return False
        self._take(event)
        self._execute(event)
        return True

    def _take(self, event: ScheduledEvent) -> None:
        """Remove the event returned by :meth:`_peek` from the queue."""
        raise NotImplementedError

    def run(self, until_ms: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains.

        Parameters
        ----------
        until_ms:
            Stop once simulated time would pass this point.  Events at
            exactly ``until_ms`` still run.
        max_events:
            Safety valve against runaway simulations; raises
            :class:`SimulationError` as soon as a pending event would
            exceed the bound, so exactly ``max_events`` events execute
            before the error.
        """
        executed = 0
        while True:
            event = self._peek()
            if event is None:
                return
            if until_ms is not None and event.time > until_ms:
                self._now = until_ms
                return
            if max_events is not None and executed >= max_events:
                raise SimulationError(f"exceeded {max_events} events; likely livelock")
            self._take(event)
            executed += 1
            self._execute(event)

    def run_until(self, predicate: Callable[[], bool], max_events: int = 50_000_000) -> None:
        """Run until ``predicate()`` becomes true or the queue drains.

        Raises :class:`SimulationError` if the predicate is still false
        after exactly ``max_events`` events have executed.
        """
        executed = 0
        step = self.step
        while not predicate():
            if executed >= max_events:
                raise SimulationError(f"exceeded {max_events} events; likely livelock")
            if not step():
                return
            executed += 1


class CalendarEventLoop(_LoopBase):
    """Calendar-queue scheduler: O(1) push/pop on the wheel.

    Example
    -------
    >>> loop = CalendarEventLoop()
    >>> fired = []
    >>> _ = loop.call_later(5.0, fired.append, "a")
    >>> _ = loop.call_later(2.0, fired.append, "b")
    >>> loop.run()
    >>> fired
    ['b', 'a']
    >>> loop.now
    5.0

    Internals
    ---------
    ``_wheel``
        Ring of ``_NUM_BUCKETS`` unsorted lists; bucket ``i`` holds
        events whose absolute bucket index ``int(t / width)`` equals the
        cursor plus the ring offset.  Because pushes beyond the horizon
        go to the overflow heap, each slot only ever holds one bucket
        index's events — no per-rotation filtering.
    ``_drain`` / ``_drain_pos``
        The cursor bucket's events, purged of cancellations and sorted
        by ``(time, seq)`` once per bucket; popping is an index bump.
        Same-bucket pushes during the drain (the common ``call_later``
        of a chained callback) are insorted behind the read position,
        preserving the global order.
    ``_far``
        Binary heap of ``(time, seq, event)`` tuples for deadlines past
        the wheel horizon.  Tuple comparison stays in C and the heap is
        tiny (exponential-backoff tails only).
    """

    def __init__(self) -> None:
        super().__init__()
        self._wheel: list[list] = [[] for _ in range(_NUM_BUCKETS)]
        #: Events resident in wheel buckets (excluding the drain run).
        self._wheel_count = 0
        #: Absolute bucket index the drain run corresponds to; buckets
        #: behind the cursor are empty and reachable only via clamped
        #: insorts into the drain.
        self._cursor = 0
        self._drain: list[tuple] = []
        self._drain_pos = 0
        self._far: list[tuple] = []

    # -- scheduling ----------------------------------------------------

    def _push(self, event: ScheduledEvent) -> None:
        time = event.time
        index = int(time * _INV_WIDTH)
        cursor = self._cursor
        if index <= cursor:
            # Due in (or before) the bucket being drained: insort into
            # the drain run.  Entries at/behind the read position have
            # times <= now <= time, so order is preserved.  The common
            # case — a chained callback scheduling the next step — lands
            # past the current tail, so try a plain append first.
            drain = self._drain
            entry = (time, event.seq, event)
            if not drain or entry >= drain[-1]:
                drain.append(entry)
            else:
                insort(drain, entry)
        elif index - cursor < _NUM_BUCKETS:
            self._wheel[index & _BUCKET_MASK].append(event)
            self._wheel_count += 1
        else:
            heapq.heappush(self._far, (time, event.seq, event))
        self._live += 1

    def call_later(
        self, delay_ms: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule {delay_ms}ms in the past")
        self._seq += 1
        event = ScheduledEvent(self._now + delay_ms, self._seq, callback, args, self)
        self._push(event)
        return event

    def call_at(
        self, time_ms: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute time ``time_ms``."""
        if time_ms < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ms}ms, already at {self._now}ms"
            )
        self._seq += 1
        event = ScheduledEvent(time_ms, self._seq, callback, args, self)
        self._push(event)
        return event

    # -- dequeueing ----------------------------------------------------

    def _prepare_drain(self) -> bool:
        """Advance the cursor to the next non-empty bucket.

        Returns ``True`` when the drain run holds at least one live
        event.  Cancelled entries are purged in bulk here — the batched
        timer-wheel discard that makes delayed-ack/PTO churn cheap.
        """
        while True:
            drain = self._drain
            pos = self._drain_pos
            # Fast path: live entries remain in the current run.
            while pos < len(drain):
                if not drain[pos][2].cancelled:
                    self._drain_pos = pos
                    return True
                pos += 1
            drain.clear()
            self._drain_pos = 0
            # Current bucket exhausted: find the next bucket holding
            # work, jumping straight to the overflow heap's head when
            # the wheel is empty.
            far = self._far
            if self._wheel_count == 0:
                if not far:
                    return False
                self._cursor = max(self._cursor + 1, int(far[0][0] * _INV_WIDTH))
            else:
                cursor = self._cursor
                far_index = int(far[0][0] * _INV_WIDTH) if far else None
                wheel = self._wheel
                cursor += 1
                while not wheel[cursor & _BUCKET_MASK]:
                    if far_index is not None and far_index <= cursor:
                        break
                    cursor += 1
                self._cursor = cursor
            # Collect the bucket's entries plus any overflow deadlines
            # that now fall inside it, purge cancellations, sort once.
            bucket_end = (self._cursor + 1) * _BUCKET_WIDTH_MS
            bucket = self._wheel[self._cursor & _BUCKET_MASK]
            if bucket:
                self._wheel_count -= len(bucket)
                for event in bucket:
                    if event.cancelled:
                        continue
                    drain.append((event.time, event.seq, event))
                bucket.clear()
            while far and far[0][0] < bucket_end:
                entry = heapq.heappop(far)
                if not entry[2].cancelled:
                    drain.append(entry)
            if drain:
                drain.sort()
                # Loop back to the fast path (entries may still have
                # been cancelled between append and sort — they were
                # not, but the scan is the same code either way).

    def _peek(self) -> ScheduledEvent | None:
        if not self._prepare_drain():
            return None
        return self._drain[self._drain_pos][2]

    def _take(self, event: ScheduledEvent) -> None:
        self._drain_pos += 1
        event._loop = None
        self._live -= 1

    # Hand-specialized dispatch: run() and step() below duplicate the
    # base-class logic with the drain access inlined, because this is
    # the innermost loop of every simulation (tens of millions of
    # events per campaign) and the _peek/_take indirection costs ~15%.

    def step(self) -> bool:
        drain = self._drain
        pos = self._drain_pos
        if pos < len(drain):
            event = drain[pos][2]
            if not event.cancelled:
                self._drain_pos = pos + 1
                event._loop = None
                self._live -= 1
                self._execute(event)
                return True
        if not self._prepare_drain():
            return False
        event = self._drain[self._drain_pos][2]
        self._drain_pos += 1
        event._loop = None
        self._live -= 1
        self._execute(event)
        return True

    def run(self, until_ms: float | None = None, max_events: int | None = None) -> None:
        if until_ms is not None or max_events is not None or self._check is not None:
            _LoopBase.run(self, until_ms, max_events)
            return
        # Unbounded, unchecked run: the campaign hot loop.
        prepare = self._prepare_drain
        profiled = self._profiled_call
        while True:
            drain = self._drain
            pos = self._drain_pos
            if pos >= len(drain):
                if not prepare():
                    return
                drain = self._drain
                pos = self._drain_pos
            entry = drain[pos]
            self._drain_pos = pos + 1
            event = entry[2]
            if event.cancelled:
                continue
            event._loop = None
            self._live -= 1
            self._now = entry[0]
            self._processed += 1
            if self._profile is None:
                event.callback(*event.args)
            else:
                profiled(event)

    run.__doc__ = _LoopBase.run.__doc__


class HeapEventLoop(_LoopBase):
    """The original binary-heap scheduler (differential baseline).

    Example
    -------
    >>> loop = HeapEventLoop()
    >>> fired = []
    >>> _ = loop.call_later(5.0, fired.append, "a")
    >>> _ = loop.call_later(2.0, fired.append, "b")
    >>> loop.run()
    >>> fired
    ['b', 'a']
    >>> loop.now
    5.0
    """

    def __init__(self) -> None:
        super().__init__()
        self._queue: list[ScheduledEvent] = []

    def call_later(
        self, delay_ms: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule {delay_ms}ms in the past")
        self._seq += 1
        event = ScheduledEvent(self._now + delay_ms, self._seq, callback, args, self)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def call_at(
        self, time_ms: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute time ``time_ms``."""
        if time_ms < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ms}ms, already at {self._now}ms"
            )
        self._seq += 1
        event = ScheduledEvent(time_ms, self._seq, callback, args, self)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def _peek(self) -> ScheduledEvent | None:
        queue = self._queue
        while queue:
            head = queue[0]
            if head.cancelled:
                heapq.heappop(queue)
                continue
            return head
        return None

    def _take(self, event: ScheduledEvent) -> None:
        heapq.heappop(self._queue)
        event._loop = None
        self._live -= 1


# -- optional C-accelerated scheduler ----------------------------------

from repro.events import _accel

_ckernel = _accel.load()

if _ckernel is not None:
    _ckernel._install(SimulationError)

    class CEventLoop(_ckernel.LoopCore):
        """C-accelerated scheduler (compiled from ``_ckernel.c``).

        Same API and same (time, seq) total order as the Python
        schedulers — results are bit-identical — but push, pop and
        dispatch run outside the interpreter.  Only available when the
        host toolchain could build the extension; ``EventLoop`` falls
        back to :class:`CalendarEventLoop` otherwise.

        Example
        -------
        >>> loop = CEventLoop()
        >>> fired = []
        >>> _ = loop.call_later(5.0, fired.append, "a")
        >>> _ = loop.call_later(2.0, fired.append, "b")
        >>> loop.run()
        >>> fired
        ['b', 'a']
        >>> loop.now
        5.0
        """

        __slots__ = ()

        def profile_stats(self) -> dict[str, dict]:
            """Per-callback-name ``{"count", "total_ms"}``, sorted by time."""
            raw = self._profile_raw()
            if raw is None:
                return {}
            return {
                name: {"count": entry[0], "total_ms": entry[1] * 1000.0}
                for name, entry in sorted(
                    raw.items(), key=lambda item: -item[1][1]
                )
            }

else:  # pragma: no cover - exercised on hosts without a C toolchain
    CEventLoop = None  # type: ignore[assignment,misc]


def _select_event_loop():
    """Honour ``REPRO_EVENT_LOOP`` (``c`` | ``calendar`` | ``heap``).

    The default is the fastest available implementation: the C kernel
    when the toolchain could build it, the pure-Python calendar queue
    otherwise.  Results are bit-identical across all three; the knob
    exists for benches, bisection and differential tests.
    """
    choice = os.environ.get("REPRO_EVENT_LOOP", "").lower()
    if choice == "heap":
        return HeapEventLoop
    if choice in ("calendar", "python"):
        return CalendarEventLoop
    if CEventLoop is not None:
        return CEventLoop
    return CalendarEventLoop


#: The default scheduler; see :func:`_select_event_loop`.
EventLoop = _select_event_loop()
