"""The event loop at the heart of the simulator.

Design notes
------------

* Time is a ``float`` in milliseconds.  All higher layers (links,
  transports, the browser) express delays in the same unit so there is
  never a conversion step.
* Events scheduled for the same instant fire in the order they were
  scheduled (FIFO).  This is achieved with a monotonically increasing
  sequence number used as a tie-breaker in the heap.
* Events can be cancelled.  Cancellation is O(1): the heap entry is
  marked dead and skipped when popped.  This is the standard "lazy
  deletion" approach and is what retransmission timers rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


@dataclass(order=True)
class ScheduledEvent:
    """A single entry in the event queue.

    Instances are ordered by ``(time, seq)`` so that simultaneous events
    preserve scheduling order.  ``callback`` and ``args`` are excluded
    from comparisons.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class Timer:
    """A restartable one-shot timer bound to an :class:`EventLoop`.

    Transports use timers for retransmission timeouts: ``start`` arms the
    timer, ``stop`` disarms it, and re-arming implicitly cancels the
    previous deadline.
    """

    def __init__(self, loop: "EventLoop", callback: Callable[[], None]) -> None:
        self._loop = loop
        self._callback = callback
        self._event: ScheduledEvent | None = None

    @property
    def armed(self) -> bool:
        """Whether the timer currently has a pending deadline."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay_ms: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay_ms`` from now."""
        self.stop()
        self._event = self._loop.call_later(delay_ms, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class EventLoop:
    """A deterministic discrete-event scheduler.

    Example
    -------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.call_later(5.0, fired.append, "a")
    >>> _ = loop.call_later(2.0, fired.append, "b")
    >>> loop.run()
    >>> fired
    ['b', 'a']
    >>> loop.now
    5.0
    """

    def __init__(self) -> None:
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics/benchmarks)."""
        return self._processed

    def __len__(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def call_later(
        self, delay_ms: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule {delay_ms}ms in the past")
        return self.call_at(self._now + delay_ms, callback, *args)

    def call_at(
        self, time_ms: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute time ``time_ms``."""
        if time_ms < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ms}ms, already at {self._now}ms"
            )
        event = ScheduledEvent(time_ms, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was
        empty (dead entries are skipped silently).
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until_ms: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains.

        Parameters
        ----------
        until_ms:
            Stop once simulated time would pass this point.  Events at
            exactly ``until_ms`` still run.
        max_events:
            Safety valve against runaway simulations; raises
            :class:`SimulationError` when exceeded.
        """
        executed = 0
        while self._queue:
            head = self._peek()
            if head is None:
                return
            if until_ms is not None and head.time > until_ms:
                self._now = until_ms
                return
            self.step()
            executed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely livelock")

    def run_until(self, predicate: Callable[[], bool], max_events: int = 50_000_000) -> None:
        """Run until ``predicate()`` becomes true or the queue drains."""
        executed = 0
        while not predicate():
            if not self.step():
                return
            executed += 1
            if executed > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely livelock")

    def _peek(self) -> ScheduledEvent | None:
        while self._queue:
            if self._queue[0].cancelled:
                heapq.heappop(self._queue)
                continue
            return self._queue[0]
        return None
