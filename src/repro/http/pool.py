"""Per-origin connection pooling with Chrome-like reuse rules.

Pooling is the mechanism behind two of the paper's findings:

* **Reused connections** (Fig. 7): all requests to a host after the
  connection-opening one ride the existing connection and report a
  connect time of 0 — exactly the paper's criterion for a "reused HTTP
  connection" in the Chrome-HAR data.  H1.1 opens up to six parallel
  connections per host and serializes requests on each; H2/H3 multiplex
  everything over a single connection per (host, protocol).
* **Resumed connections** (Fig. 8): when a session ticket is cached for
  the host, new connections are created in resumed mode (H3: 0-RTT;
  H2+TLS1.3: TCP round trip only), and fresh tickets are stored after
  every full handshake.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.events import EventLoop
from repro.http.messages import EntryTiming, FetchRecord, HttpProtocol
from repro.netsim.path import NetworkPath
from repro.tls.session_cache import SessionTicketCache
from repro.transport.base import BaseConnection
from repro.transport.config import TransportConfig
from repro.transport.quic import QuicConnection
from repro.transport.tcp import TcpConnection


class Server(Protocol):
    """What the pool needs from an edge/origin server."""

    hostname: str
    tls_version: object
    issues_tickets: bool

    def serve(self, resource_key: str, size_bytes: int, protocol: str):
        ...  # pragma: no cover - protocol stub


@dataclass
class PoolStats:
    """Counters the analyses read after a page visit."""

    requests: int = 0
    connections_created: int = 0
    resumed_connections: int = 0
    reused_requests: int = 0
    zero_rtt_connections: int = 0

    def merged_with(self, other: "PoolStats") -> "PoolStats":
        return PoolStats(
            requests=self.requests + other.requests,
            connections_created=self.connections_created + other.connections_created,
            resumed_connections=self.resumed_connections + other.resumed_connections,
            reused_requests=self.reused_requests + other.reused_requests,
            zero_rtt_connections=self.zero_rtt_connections + other.zero_rtt_connections,
        )

    def to_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "connectionsCreated": self.connections_created,
            "resumedConnections": self.resumed_connections,
            "reusedRequests": self.reused_requests,
            "zeroRttConnections": self.zero_rtt_connections,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, int]) -> "PoolStats":
        return cls(
            requests=raw.get("requests", 0),
            connections_created=raw.get("connectionsCreated", 0),
            resumed_connections=raw.get("resumedConnections", 0),
            reused_requests=raw.get("reusedRequests", 0),
            zero_rtt_connections=raw.get("zeroRttConnections", 0),
        )


@dataclass
class _PendingFetch:
    url: str
    resource_key: str
    request_bytes: int
    response_bytes: int
    server: Server
    protocol: HttpProtocol
    queued_at: float
    on_complete: Callable[[FetchRecord], None]
    reused: bool = True  # openers overwrite this
    weight: int = 1


class _PooledConnection:
    """One live connection plus its pending-request queue."""

    def __init__(self, conn: BaseConnection, protocol: HttpProtocol, host: str) -> None:
        self.conn = conn
        self.protocol = protocol
        self.host = host
        self.established = False
        self.resumed = conn.resumed if hasattr(conn, "resumed") else False
        self.active_streams = 0
        self.pending: deque[_PendingFetch] = deque()
        #: Whether this connection holds a handshake-throttle slot.
        self.handshake_counted = False
        #: When the handshake actually started (post-queue).
        self.connect_started_at = 0.0

    @property
    def busy(self) -> bool:
        """H1.1 connections serve one request at a time."""
        return not self.protocol.multiplexes and self.active_streams > 0


class ConnectionPool:
    """Connection pool for one browser profile.

    The pool is created fresh for every page visit ("all connections
    are terminated" between visits, Section III-B); the session-ticket
    cache passed in may outlive it (consecutive-visit mode).
    """

    H1_MAX_PER_HOST = 6

    def __init__(
        self,
        loop: EventLoop,
        session_cache: SessionTicketCache | None = None,
        transport_config: TransportConfig | None = None,
        rng: random.Random | None = None,
        use_session_tickets: bool = True,
        obs=None,
    ) -> None:
        self.loop = loop
        self.session_cache = session_cache if session_cache is not None else SessionTicketCache()
        self.transport_config = transport_config or TransportConfig()
        self.rng = rng or random.Random(0)
        self.use_session_tickets = use_session_tickets
        #: Optional :class:`repro.obs.ObsContext`; supplies per-connection
        #: tracers and receives pool/transport counters at teardown.
        self.obs = obs
        self.stats = PoolStats()
        self._multiplexed: dict[tuple[str, HttpProtocol], _PooledConnection] = {}
        self._h1_conns: dict[str, list[_PooledConnection]] = {}
        self._h1_queues: dict[str, deque[_PendingFetch]] = {}
        # Handshake throttling: browsers bound concurrent connection
        # setups; extra openers queue here (0-RTT bypasses the queue).
        self._active_handshakes = 0
        self._handshake_queue: deque[tuple[_PooledConnection, _PendingFetch]] = deque()
        self._closed = False

    # ------------------------------------------------------------------

    def fetch(
        self,
        server: Server,
        path: NetworkPath,
        protocol: HttpProtocol,
        url: str,
        request_bytes: int,
        response_bytes: int,
        on_complete: Callable[[FetchRecord], None],
        resource_key: str | None = None,
        weight: int = 1,
    ) -> None:
        """Fetch one resource; ``on_complete`` receives the record.

        ``weight`` is the stream priority on multiplexed connections.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self.stats.requests += 1
        fetch = _PendingFetch(
            url=url,
            resource_key=resource_key if resource_key is not None else url,
            request_bytes=request_bytes,
            response_bytes=response_bytes,
            server=server,
            protocol=protocol,
            queued_at=self.loop.now,
            on_complete=on_complete,
            weight=weight,
        )
        if protocol.multiplexes:
            self._fetch_multiplexed(fetch, path)
        else:
            self._fetch_h1(fetch, path)

    @staticmethod
    def _coalesce_key(server: Server) -> str:
        """Coalescing group: providers' edges share one connection per
        protocol (certificate/IP coalescing); origins stay per-host."""
        return getattr(server, "coalesce_key", None) or server.hostname

    def _fetch_multiplexed(self, fetch: _PendingFetch, path: NetworkPath) -> None:
        key = (self._coalesce_key(fetch.server), fetch.protocol)
        pooled = self._multiplexed.get(key)
        if pooled is None:
            pooled = self._open_connection(fetch, path)
            self._multiplexed[key] = pooled
            return
        if pooled.established:
            self.stats.reused_requests += 1
            self._issue(pooled, fetch, reused=True)
        else:
            # Arrived mid-handshake: waits, then reports connect = 0.
            self.stats.reused_requests += 1
            pooled.pending.append(fetch)

    def _fetch_h1(self, fetch: _PendingFetch, path: NetworkPath) -> None:
        host = fetch.server.hostname
        conns = self._h1_conns.setdefault(host, [])
        for pooled in conns:
            if pooled.established and not pooled.busy:
                self.stats.reused_requests += 1
                self._issue(pooled, fetch, reused=True)
                return
        if len(conns) < self.H1_MAX_PER_HOST:
            conns.append(self._open_connection(fetch, path))
            return
        self._h1_queues.setdefault(host, deque()).append(fetch)

    # ------------------------------------------------------------------

    def _open_connection(self, opener: _PendingFetch, path: NetworkPath) -> _PooledConnection:
        host = opener.server.hostname
        conn_rng = random.Random(self.rng.getrandbits(64))
        conn_name = (
            f"h3-{host}" if opener.protocol is HttpProtocol.H3 else f"tcp-{host}"
        )
        tracer = (
            self.obs.connection_tracer(conn_name, opener.protocol.value)
            if self.obs is not None
            else None
        )
        has_ticket = False
        if self.use_session_tickets:
            ticket = self.session_cache.lookup(host, self.loop.now)
            if ticket is not None:
                # The server may reject the ticket (key rotation, a
                # different machine behind the load balancer): the
                # connection then falls back to a full handshake.
                accept_rate = getattr(opener.server, "resumption_rate", 1.0)
                has_ticket = conn_rng.random() < accept_rate
            if tracer:
                if has_ticket:
                    tracer.event(
                        self.loop.now, "security:session_ticket_hit", host=host
                    )
                elif ticket is not None:
                    tracer.event(
                        self.loop.now, "security:session_ticket_rejected", host=host
                    )
                else:
                    tracer.event(
                        self.loop.now, "security:session_ticket_miss", host=host
                    )
            if ticket is not None and not has_ticket and self.obs is not None:
                self.obs.counters.incr("tls.tickets.rejected")
        if opener.protocol is HttpProtocol.H3:
            if tracer and has_ticket:
                tracer.event(self.loop.now, "security:zero_rtt_accepted", host=host)
            conn: BaseConnection = QuicConnection(
                self.loop, path, config=self.transport_config,
                rng=conn_rng, resumed=has_ticket, name=conn_name,
                tracer=tracer,
            )
        else:
            conn = TcpConnection(
                self.loop, path, config=self.transport_config,
                rng=conn_rng, resumed=has_ticket,
                tls_version=opener.server.tls_version, name=conn_name,
                tracer=tracer,
            )
        pooled = _PooledConnection(conn, opener.protocol, host)
        pooled.resumed = has_ticket
        self.stats.connections_created += 1
        if has_ticket:
            self.stats.resumed_connections += 1
        opener.reused = False
        # 0-RTT resumed QUIC needs no handshake round trip: it bypasses
        # the browser's handshake throttle.  Everything else competes
        # for a bounded number of concurrent setups.
        zero_rtt = has_ticket and opener.protocol is HttpProtocol.H3
        max_handshakes = self.transport_config.max_concurrent_handshakes
        if zero_rtt or self._active_handshakes < max_handshakes:
            self._start_handshake(pooled, opener, counted=not zero_rtt)
        else:
            self._handshake_queue.append((pooled, opener))
        return pooled

    def _start_handshake(
        self, pooled: _PooledConnection, opener: _PendingFetch, counted: bool = True
    ) -> None:
        pooled.handshake_counted = counted
        pooled.connect_started_at = self.loop.now
        if counted:
            self._active_handshakes += 1
        pooled.conn.connect(lambda result: self._on_established(pooled, opener, result))

    def _on_established(self, pooled: _PooledConnection, opener: _PendingFetch, result) -> None:
        pooled.established = True
        if pooled.handshake_counted:
            self._active_handshakes -= 1
            max_handshakes = self.transport_config.max_concurrent_handshakes
            while self._handshake_queue and self._active_handshakes < max_handshakes:
                queued_pooled, queued_opener = self._handshake_queue.popleft()
                self._start_handshake(queued_pooled, queued_opener)
        if result.zero_rtt:
            self.stats.zero_rtt_connections += 1
        if self.obs is not None:
            counters = self.obs.counters
            counters.incr("transport.handshakes.completed")
            counters.incr("transport.handshakes.retries", result.retries)
            counters.observe("transport.handshake_ms", result.connect_ms)
            if result.zero_rtt:
                counters.incr("transport.handshakes.zero_rtt")
        if (
            self.use_session_tickets
            and getattr(opener.server, "issues_tickets", True)
            and self.transport_config.issue_session_tickets
        ):
            self.session_cache.store(pooled.host, self.loop.now)
        self._issue(pooled, opener, reused=False, handshake=result)
        while pooled.pending and not pooled.busy:
            self._issue(pooled, pooled.pending.popleft(), reused=True)

    def _issue(
        self,
        pooled: _PooledConnection,
        fetch: _PendingFetch,
        reused: bool,
        handshake=None,
    ) -> None:
        now = self.loop.now
        decision = fetch.server.serve(
            fetch.resource_key, fetch.response_bytes, fetch.protocol.value
        )
        think_ms = decision.think_ms
        if handshake is not None:
            # Connection-opening request: the server pays the TLS setup
            # CPU (certificate crypto on full handshakes, much less on
            # resumed ones) before processing the request.
            if pooled.resumed:
                think_ms += getattr(fetch.server, "resumed_setup_cpu_ms", 0.0)
            else:
                think_ms += getattr(fetch.server, "tls_setup_cpu_ms", 0.0)
        timing = EntryTiming()
        if reused or handshake is None:
            timing.blocked = now - fetch.queued_at
        else:
            # Opener: time spent waiting for a handshake slot is
            # "blocked"; the handshake itself is "connect".
            timing.blocked = pooled.connect_started_at - fetch.queued_at
            timing.connect = handshake.connect_ms
            timing.ssl = getattr(pooled.conn, "ssl_ms", None) or 0.0
        record = FetchRecord(
            url=fetch.url,
            # The request's own hostname (a coalesced connection serves
            # several hosts; HAR entries keep the per-request host).
            host=fetch.server.hostname,
            protocol=fetch.protocol,
            started_at_ms=fetch.queued_at,
            timing=timing,
            response_bytes=fetch.response_bytes,
            request_bytes=fetch.request_bytes,
            headers=dict(decision.headers),
            reused=reused,
            resumed=pooled.resumed,
            cache_hit=decision.cache_hit,
        )
        pooled.active_streams += 1
        issued_at = now

        def on_first_byte(t: float) -> None:
            record.timing.wait = t - issued_at

        def on_stream_complete(t: float) -> None:
            first_byte_at = issued_at + record.timing.wait
            record.timing.receive = t - first_byte_at
            record.completed_at_ms = t
            pooled.active_streams -= 1
            fetch.on_complete(record)
            self._drain_h1(pooled)

        pooled.conn.request(
            fetch.request_bytes,
            fetch.response_bytes,
            think_ms=think_ms,
            on_first_byte=on_first_byte,
            on_complete=on_stream_complete,
            weight=fetch.weight,
        )

    def _drain_h1(self, pooled: _PooledConnection) -> None:
        if pooled.protocol.multiplexes or pooled.busy:
            return
        queue = self._h1_queues.get(pooled.host)
        if queue:
            fetch = queue.popleft()
            self.stats.reused_requests += 1
            self._issue(pooled, fetch, reused=True)

    # ------------------------------------------------------------------

    def connection_count(self) -> int:
        """Live connections (diagnostics)."""
        return len(self._multiplexed) + sum(len(v) for v in self._h1_conns.values())

    def close(self) -> None:
        """Terminate every connection (between page visits).

        With observability attached, this is also where per-connection
        transport stats and the pool's own counters are folded into the
        registry — a cold path, so packet accounting never slows down.
        """
        self._closed = True
        all_conns = list(self._multiplexed.values())
        for conns in self._h1_conns.values():
            all_conns.extend(conns)
        for pooled in all_conns:
            pooled.conn.close()
        if self.obs is not None:
            for pooled in all_conns:
                self.obs.absorb_connection(pooled.conn)
            counters = self.obs.counters
            counters.incr("pool.requests", self.stats.requests)
            counters.incr("pool.connections_created", self.stats.connections_created)
            counters.incr("pool.resumed_connections", self.stats.resumed_connections)
            counters.incr("pool.reused_requests", self.stats.reused_requests)
            counters.incr("pool.zero_rtt_connections", self.stats.zero_rtt_connections)
        self._multiplexed.clear()
        self._h1_conns.clear()
        self._h1_queues.clear()
