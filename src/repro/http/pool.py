"""Per-origin connection pooling with Chrome-like reuse rules.

Pooling is the mechanism behind two of the paper's findings:

* **Reused connections** (Fig. 7): all requests to a host after the
  connection-opening one ride the existing connection and report a
  connect time of 0 — exactly the paper's criterion for a "reused HTTP
  connection" in the Chrome-HAR data.  H1.1 opens up to six parallel
  connections per host and serializes requests on each; H2/H3 multiplex
  everything over a single connection per (host, protocol).
* **Resumed connections** (Fig. 8): when a session ticket is cached for
  the host, new connections are created in resumed mode (H3: 0-RTT;
  H2+TLS1.3: TCP round trip only), and fresh tickets are stored after
  every full handshake.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Callable, Protocol

from repro.check.context import EPSILON_MS, NULL_CHECK
from repro.events import EventLoop, ScheduledEvent, Timer
from repro.http.messages import EntryTiming, FetchRecord, HttpProtocol
from repro.netsim.path import NetworkPath
from repro.tls.session_cache import SessionTicketCache
from repro.transport.base import BaseConnection
from repro.transport.config import TransportConfig
from repro.transport.quic import QuicConnection
from repro.transport.tcp import TcpConnection

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.inject import FaultInjector
    from repro.http.alt_svc import AltSvcCache


class Server(Protocol):
    """What the pool needs from an edge/origin server."""

    hostname: str
    tls_version: object
    issues_tickets: bool

    def serve(self, resource_key: str, size_bytes: int, protocol: str):
        ...  # pragma: no cover - protocol stub


@dataclass
class PoolStats:
    """Counters the analyses read after a page visit.

    The fault-era fields (``failed_requests`` onward) serialize only
    when nonzero, so visit payloads from fault-free runs stay
    byte-identical to the pre-fault format.
    """

    requests: int = 0
    connections_created: int = 0
    resumed_connections: int = 0
    reused_requests: int = 0
    zero_rtt_connections: int = 0
    failed_requests: int = 0
    retried_requests: int = 0
    h3_fallbacks: int = 0
    connect_timeouts: int = 0
    connection_resets: int = 0
    quic_migrations: int = 0
    migration_reconnects: int = 0
    proxy_h3_downgrades: int = 0
    proxy_cache_hits: int = 0

    def merged_with(self, other: "PoolStats") -> "PoolStats":
        # Derived from the dataclass fields so a future counter can
        # never be silently dropped from the merge (the drift that bit
        # to_dict/from_dict when the fault-era fields landed).
        return PoolStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def to_dict(self) -> dict[str, int]:
        payload = {
            "requests": self.requests,
            "connectionsCreated": self.connections_created,
            "resumedConnections": self.resumed_connections,
            "reusedRequests": self.reused_requests,
            "zeroRttConnections": self.zero_rtt_connections,
        }
        if self.failed_requests:
            payload["failedRequests"] = self.failed_requests
        if self.retried_requests:
            payload["retriedRequests"] = self.retried_requests
        if self.h3_fallbacks:
            payload["h3Fallbacks"] = self.h3_fallbacks
        if self.connect_timeouts:
            payload["connectTimeouts"] = self.connect_timeouts
        if self.connection_resets:
            payload["connectionResets"] = self.connection_resets
        if self.quic_migrations:
            payload["quicMigrations"] = self.quic_migrations
        if self.migration_reconnects:
            payload["migrationReconnects"] = self.migration_reconnects
        if self.proxy_h3_downgrades:
            payload["proxyH3Downgrades"] = self.proxy_h3_downgrades
        if self.proxy_cache_hits:
            payload["proxyCacheHits"] = self.proxy_cache_hits
        return payload

    @classmethod
    def from_dict(cls, raw: dict[str, int]) -> "PoolStats":
        return cls(
            requests=raw.get("requests", 0),
            connections_created=raw.get("connectionsCreated", 0),
            resumed_connections=raw.get("resumedConnections", 0),
            reused_requests=raw.get("reusedRequests", 0),
            zero_rtt_connections=raw.get("zeroRttConnections", 0),
            failed_requests=raw.get("failedRequests", 0),
            retried_requests=raw.get("retriedRequests", 0),
            h3_fallbacks=raw.get("h3Fallbacks", 0),
            connect_timeouts=raw.get("connectTimeouts", 0),
            connection_resets=raw.get("connectionResets", 0),
            quic_migrations=raw.get("quicMigrations", 0),
            migration_reconnects=raw.get("migrationReconnects", 0),
            proxy_h3_downgrades=raw.get("proxyH3Downgrades", 0),
            proxy_cache_hits=raw.get("proxyCacheHits", 0),
        )


@dataclass
class _PendingFetch:
    url: str
    resource_key: str
    request_bytes: int
    response_bytes: int
    server: Server
    protocol: HttpProtocol
    queued_at: float
    on_complete: Callable[[FetchRecord], None]
    reused: bool = True  # openers overwrite this
    weight: int = 1
    #: The network path the fetch was dispatched over; kept so fault
    #: recovery can re-dispatch the fetch on a fresh connection.
    path: NetworkPath | None = None
    #: Recovery retries consumed so far (fault injection only).
    attempts: int = 0
    #: Armed request-timeout timer while the fetch is in flight.
    timer: Timer | None = None
    #: Client Accept-Encoding preference (compression campaigns only;
    #: ``None`` keeps the legacy 3-argument ``serve`` call).
    accept_encoding: tuple[str, ...] | None = None
    #: Resource type ("html", "js", …) for encoding decisions.
    rtype: str | None = None


class _PooledConnection:
    """One live connection plus its pending-request queue."""

    def __init__(self, conn: BaseConnection, protocol: HttpProtocol, host: str) -> None:
        self.conn = conn
        self.protocol = protocol
        self.host = host
        self.established = False
        self.resumed = conn.resumed if hasattr(conn, "resumed") else False
        self.active_streams = 0
        self.pending: deque[_PendingFetch] = deque()
        #: Whether this connection holds a handshake-throttle slot.
        self.handshake_counted = False
        #: When the handshake actually started (post-queue).
        self.connect_started_at = 0.0
        # -- fault-recovery state (inert without an injector) ----------
        #: The fetch that opened this connection (until it is issued).
        self.opener: _PendingFetch | None = None
        #: Coalescing key the connection is registered under.
        self.coalesce_key = host
        #: Fetches currently issued on this connection.
        self.inflight: list[_PendingFetch] = []
        #: Connect-timeout timer (armed while handshaking under faults).
        self.connect_timer: Timer | None = None
        #: Scheduled mid-transfer reset, if the profile scripts one.
        self.reset_event: ScheduledEvent | None = None
        #: Scheduled mid-transfer client address change, if scripted.
        self.migration_event: ScheduledEvent | None = None
        #: Set once the connection is torn down by fault recovery;
        #: late callbacks from the dead connection check it and bail.
        self.failed = False
        #: Open ``phase:connect`` span id while handshaking (spans only).
        self.connect_span: int | None = None

    @property
    def busy(self) -> bool:
        """H1.1 connections serve one request at a time."""
        return not self.protocol.multiplexes and self.active_streams > 0


class ConnectionPool:
    """Connection pool for one browser profile.

    The pool is created fresh for every page visit ("all connections
    are terminated" between visits, Section III-B); the session-ticket
    cache passed in may outlive it (consecutive-visit mode).
    """

    H1_MAX_PER_HOST = 6

    def __init__(
        self,
        loop: EventLoop,
        session_cache: SessionTicketCache | None = None,
        transport_config: TransportConfig | None = None,
        rng: random.Random | None = None,
        use_session_tickets: bool = True,
        obs=None,
        faults: "FaultInjector | None" = None,
        alt_svc: "AltSvcCache | None" = None,
        check=None,
        proxy_cache=None,
    ) -> None:
        self.loop = loop
        #: Invariant checker (strict mode); the falsy null check keeps
        #: every ``if self.check:`` guard a single bool test.
        self.check = check if check is not None else NULL_CHECK
        self.session_cache = session_cache if session_cache is not None else SessionTicketCache()
        self.transport_config = transport_config or TransportConfig()
        self.rng = rng or random.Random(0)
        self.use_session_tickets = use_session_tickets
        #: Optional :class:`repro.obs.ObsContext`; supplies per-connection
        #: tracers/samplers and receives pool/transport counters at
        #: teardown.
        self.obs = obs
        #: Span recorder for the current visit (pools are per-visit, so
        #: caching the recorder here is safe), or None when spans are off.
        self._spans = obs.spans if obs is not None else None
        #: Optional :class:`repro.faults.FaultInjector`.  ``None`` keeps
        #: every recovery hook dormant — no timers, no path wrapping, no
        #: extra bookkeeping — so fault-free runs stay bit-identical.
        self.faults = faults
        #: The browser's Alt-Svc cache; H3 connect failures demote the
        #: opener's host here so later visits skip straight to TCP.
        self.alt_svc = alt_svc
        #: Coalesce keys whose H3 lane is dead for this pool's lifetime.
        self._h3_broken_keys: set[str] = set()
        #: Coalesce keys whose H3 attempt a TCP-only proxy already
        #: downgraded (count/trace once per would-be QUIC connection).
        self._proxy_downgraded_keys: set[str] = set()
        self.stats = PoolStats()
        self._multiplexed: dict[tuple[str, HttpProtocol], _PooledConnection] = {}
        self._h1_conns: dict[str, list[_PooledConnection]] = {}
        self._h1_queues: dict[str, deque[_PendingFetch]] = {}
        # Handshake throttling: browsers bound concurrent connection
        # setups; extra openers queue here (0-RTT bypasses the queue).
        self._active_handshakes = 0
        self._handshake_queue: deque[tuple[_PooledConnection, _PendingFetch]] = deque()
        #: Farm-owned proxy-side response cache (connect-tunnel proxies
        #: with ``cache_mb`` only); outlives this per-visit pool.
        self._proxy_cache = proxy_cache
        #: Lazy :class:`repro.cdn.economics.EconomicsLedger`; created on
        #: the first ServeDecision that carries an economics delta, so
        #: legacy campaigns never touch it.
        self._economics = None
        self._closed = False

    # ------------------------------------------------------------------

    def fetch(
        self,
        server: Server,
        path: NetworkPath,
        protocol: HttpProtocol,
        url: str,
        request_bytes: int,
        response_bytes: int,
        on_complete: Callable[[FetchRecord], None],
        resource_key: str | None = None,
        weight: int = 1,
        accept_encoding: tuple[str, ...] | None = None,
        rtype: str | None = None,
    ) -> None:
        """Fetch one resource; ``on_complete`` receives the record.

        ``weight`` is the stream priority on multiplexed connections.
        ``accept_encoding``/``rtype`` drive server-side compression
        negotiation; ``None`` (the default) keeps the legacy serve path.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self.stats.requests += 1
        fetch = _PendingFetch(
            url=url,
            resource_key=resource_key if resource_key is not None else url,
            request_bytes=request_bytes,
            response_bytes=response_bytes,
            server=server,
            protocol=protocol,
            queued_at=self.loop.now,
            on_complete=on_complete,
            weight=weight,
            path=path,
            accept_encoding=accept_encoding,
            rtype=rtype,
        )
        if protocol.multiplexes:
            self._fetch_multiplexed(fetch, path)
        else:
            self._fetch_h1(fetch, path)

    def _dispatch(self, fetch: _PendingFetch) -> None:
        """(Re-)dispatch a fetch according to its current protocol.

        Fault recovery re-enters here after retries and H3→H2 fallback;
        the fetch keeps its original path, callback and queue time.
        """
        if self._closed:
            return
        assert fetch.path is not None
        if fetch.protocol.multiplexes:
            self._fetch_multiplexed(fetch, fetch.path)
        else:
            self._fetch_h1(fetch, fetch.path)

    @staticmethod
    def _coalesce_key(server: Server) -> str:
        """Coalescing group: providers' edges share one connection per
        protocol (certificate/IP coalescing); origins stay per-host."""
        return getattr(server, "coalesce_key", None) or server.hostname

    def _fetch_multiplexed(self, fetch: _PendingFetch, path: NetworkPath) -> None:
        if fetch.protocol is HttpProtocol.H3 and not getattr(
            path, "h3_passthrough", True
        ):
            # A CONNECT-style tunnel on the path only relays TCP byte
            # streams: the H3 (QUIC-over-UDP) attempt cannot traverse
            # the proxy and downgrades to H2 over the tunnel.
            self._proxy_downgrade_h3(fetch, path)
            if not fetch.protocol.multiplexes:
                self._fetch_h1(fetch, path)
                return
        if (
            fetch.protocol is HttpProtocol.H3
            and self.faults is not None
            and self._coalesce_key(fetch.server) in self._h3_broken_keys
        ):
            # This coalesce group's QUIC lane already failed: route the
            # fetch straight to TCP instead of re-proving the blackhole.
            fetch.protocol = (
                HttpProtocol.H2
                if getattr(fetch.server, "supports_h2", True)
                else HttpProtocol.H1
            )
            if not fetch.protocol.multiplexes:
                self._fetch_h1(fetch, path)
                return
        key = (self._coalesce_key(fetch.server), fetch.protocol)
        pooled = self._multiplexed.get(key)
        if pooled is None:
            pooled = self._open_connection(fetch, path)
            self._multiplexed[key] = pooled
            return
        if pooled.established:
            self.stats.reused_requests += 1
            self._issue(pooled, fetch, reused=True)
        else:
            # Arrived mid-handshake: waits, then reports connect = 0.
            self.stats.reused_requests += 1
            pooled.pending.append(fetch)

    def _proxy_downgrade_h3(self, fetch: _PendingFetch, path: NetworkPath) -> None:
        """Reroute one H3 fetch to TCP at a non-UDP-capable proxy."""
        fetch.protocol = (
            HttpProtocol.H2
            if getattr(fetch.server, "supports_h2", True)
            else HttpProtocol.H1
        )
        key = self._coalesce_key(fetch.server)
        if key in self._proxy_downgraded_keys:
            return
        # First H3 attempt for this coalesce group: account for the
        # one QUIC connection the proxy refused to carry.
        self._proxy_downgraded_keys.add(key)
        self.stats.proxy_h3_downgrades += 1
        if self.obs is not None:
            self.obs.counters.incr("proxy.h3_downgrades")
            tracer = self.obs.fault_tracer()
            if tracer:
                tracer.event(
                    self.loop.now,
                    "proxy:h3_downgrade",
                    host=fetch.server.hostname,
                    model=getattr(path, "proxy_model", None) or "connect-tunnel",
                )

    def _fetch_h1(self, fetch: _PendingFetch, path: NetworkPath) -> None:
        host = fetch.server.hostname
        conns = self._h1_conns.setdefault(host, [])
        for pooled in conns:
            if pooled.established and not pooled.busy:
                self.stats.reused_requests += 1
                self._issue(pooled, fetch, reused=True)
                return
        if len(conns) < self.H1_MAX_PER_HOST:
            conns.append(self._open_connection(fetch, path))
            return
        self._h1_queues.setdefault(host, deque()).append(fetch)

    # ------------------------------------------------------------------

    def _open_connection(self, opener: _PendingFetch, path: NetworkPath) -> _PooledConnection:
        host = opener.server.hostname
        conn_rng = random.Random(self.rng.getrandbits(64))
        conn_name = (
            f"h3-{host}" if opener.protocol is HttpProtocol.H3 else f"tcp-{host}"
        )
        tracer = (
            self.obs.connection_tracer(conn_name, opener.protocol.value)
            if self.obs is not None
            else None
        )
        has_ticket = False
        if self.use_session_tickets:
            ticket = self.session_cache.lookup(host, self.loop.now)
            if ticket is not None:
                # The server may reject the ticket (key rotation, a
                # different machine behind the load balancer): the
                # connection then falls back to a full handshake.
                accept_rate = getattr(opener.server, "resumption_rate", 1.0)
                has_ticket = conn_rng.random() < accept_rate
            if (
                has_ticket
                and self.faults is not None
                and self.faults.zero_rtt_rejected(host)
            ):
                # Scripted key rotation: the server refuses resumption;
                # the connection pays a full handshake instead.
                has_ticket = False
                self.faults.record_fault("zero_rtt_reject", host)
            if tracer:
                if has_ticket:
                    tracer.event(
                        self.loop.now, "security:session_ticket_hit", host=host
                    )
                elif ticket is not None:
                    tracer.event(
                        self.loop.now, "security:session_ticket_rejected", host=host
                    )
                else:
                    tracer.event(
                        self.loop.now, "security:session_ticket_miss", host=host
                    )
            if ticket is not None and not has_ticket and self.obs is not None:
                self.obs.counters.incr("tls.tickets.rejected")
        sampler = (
            self.obs.connection_sampler(conn_name, opener.protocol.value)
            if self.obs is not None
            else None
        )
        if sampler is not None:
            # Link samplers go on the *unwrapped* path: a fault wrapper
            # proxies the same underlying links, and attachment must
            # survive re-wrapping across retries.
            self.obs.attach_link_sampler(path.downlink)
            self.obs.attach_link_sampler(path.uplink)
        if self.faults is not None:
            # Per-connection fault view: blackouts drop everything, UDP
            # blackholes drop only QUIC packets.
            path = self.faults.wrap_path(
                path, host, quic=opener.protocol is HttpProtocol.H3
            )
        if opener.protocol is HttpProtocol.H3:
            if tracer and has_ticket:
                tracer.event(self.loop.now, "security:zero_rtt_accepted", host=host)
            conn: BaseConnection = QuicConnection(
                self.loop, path, config=self.transport_config,
                rng=conn_rng, resumed=has_ticket, name=conn_name,
                tracer=tracer, check=self.check or None, sampler=sampler,
            )
        else:
            conn = TcpConnection(
                self.loop, path, config=self.transport_config,
                rng=conn_rng, resumed=has_ticket,
                tls_version=opener.server.tls_version, name=conn_name,
                tracer=tracer, check=self.check or None, sampler=sampler,
            )
        pooled = _PooledConnection(conn, opener.protocol, host)
        pooled.resumed = has_ticket
        pooled.coalesce_key = self._coalesce_key(opener.server)
        if self.faults is not None:
            pooled.opener = opener
            conn.on_error = lambda error: self._on_transport_error(pooled)
        self.stats.connections_created += 1
        if has_ticket:
            self.stats.resumed_connections += 1
        opener.reused = False
        # 0-RTT resumed QUIC needs no handshake round trip: it bypasses
        # the browser's handshake throttle.  Everything else competes
        # for a bounded number of concurrent setups.
        zero_rtt = has_ticket and opener.protocol is HttpProtocol.H3
        max_handshakes = self.transport_config.max_concurrent_handshakes
        if zero_rtt or self._active_handshakes < max_handshakes:
            self._start_handshake(pooled, opener, counted=not zero_rtt)
        else:
            self._handshake_queue.append((pooled, opener))
        return pooled

    def _start_handshake(
        self, pooled: _PooledConnection, opener: _PendingFetch, counted: bool = True
    ) -> None:
        pooled.handshake_counted = counted
        pooled.connect_started_at = self.loop.now
        spans = self._spans
        if spans is not None:
            pooled.connect_span = spans.begin(
                "phase", f"connect:{pooled.host}", self.loop.now,
                parent=spans.current_visit,
            )
        if counted:
            self._active_handshakes += 1
        if self.faults is None:
            pooled.conn.connect(
                lambda result: self._on_established(pooled, opener, result)
            )
            return
        # Under fault injection a handshake gets a hard deadline: a
        # blackholed QUIC handshake would otherwise crawl its retry
        # ladder for tens of simulated seconds before giving up.
        pooled.connect_timer = Timer(
            self.loop, lambda: self._on_connect_timeout(pooled)
        )
        pooled.connect_timer.start(self.faults.retry.connect_timeout_ms)
        pooled.conn.connect(
            lambda result: self._on_established(pooled, opener, result),
            on_failed=lambda error: self._on_connect_timeout(pooled),
        )

    def _on_established(self, pooled: _PooledConnection, opener: _PendingFetch, result) -> None:
        if pooled.failed or self._closed:
            return  # fault recovery already tore this connection down
        pooled.established = True
        if self.faults is not None:
            pooled.opener = None
            if pooled.connect_timer is not None:
                pooled.connect_timer.stop()
                pooled.connect_timer = None
            reset_at = self.faults.connection_reset_at(pooled.host)
            if reset_at is not None:
                pooled.reset_event = self.loop.call_at(
                    reset_at, self._on_connection_reset, pooled
                )
            migration = self.faults.migration_at(pooled.host)
            if migration is not None:
                migrate_at, kind = migration
                pooled.migration_event = self.loop.call_at(
                    migrate_at, self._on_migration, pooled, kind
                )
        spans = self._spans
        if spans is not None and pooled.connect_span is not None:
            now = self.loop.now
            spans.end(pooled.connect_span, now)
            ssl_ms = getattr(pooled.conn, "ssl_ms", None)
            if ssl_ms:
                # The TLS share of the handshake, reconstructed from the
                # flight timings (the handshake just completed at `now`).
                spans.add(
                    "phase", f"tls:{pooled.host}", now - ssl_ms, now,
                    parent=pooled.connect_span,
                )
            pooled.connect_span = None
        self._release_handshake_slot(pooled)
        if result.zero_rtt:
            self.stats.zero_rtt_connections += 1
        if self.obs is not None:
            counters = self.obs.counters
            counters.incr("transport.handshakes.completed")
            counters.incr("transport.handshakes.retries", result.retries)
            counters.observe("transport.handshake_ms", result.connect_ms)
            if result.zero_rtt:
                counters.incr("transport.handshakes.zero_rtt")
        if (
            self.use_session_tickets
            and getattr(opener.server, "issues_tickets", True)
            and self.transport_config.issue_session_tickets
        ):
            self.session_cache.store(pooled.host, self.loop.now)
        self._issue(pooled, opener, reused=False, handshake=result)
        while pooled.pending and not pooled.busy:
            self._issue(pooled, pooled.pending.popleft(), reused=True)

    def _release_handshake_slot(self, pooled: _PooledConnection) -> None:
        """Free the handshake-throttle slot and drain the queue."""
        if not pooled.handshake_counted:
            return
        pooled.handshake_counted = False
        self._active_handshakes -= 1
        if self.check:
            self.check.require(
                self._active_handshakes >= 0,
                "pool:handshake_slots_balanced",
                "released more handshake slots than were taken",
                time_ms=self.loop.now,
                active=self._active_handshakes,
            )
        max_handshakes = self.transport_config.max_concurrent_handshakes
        while self._handshake_queue and self._active_handshakes < max_handshakes:
            queued_pooled, queued_opener = self._handshake_queue.popleft()
            self._start_handshake(queued_pooled, queued_opener)

    # -- fault recovery ------------------------------------------------

    def _on_connect_timeout(self, pooled: _PooledConnection) -> None:
        """The handshake deadline expired (or the transport gave up)."""
        if self._closed or pooled.failed or pooled.established:
            return
        self.stats.connect_timeouts += 1
        # Attribute the timeout to its scripted cause so the fault:
        # event family reflects what actually ate the packets.
        if self.faults.blackout(pooled.host):
            self.faults.record_fault("blackout", pooled.host)
        elif pooled.protocol is HttpProtocol.H3 and self.faults.udp_blackholed(
            pooled.host
        ):
            self.faults.record_fault("udp_blackhole", pooled.host)
        self.faults.record_recovery(
            "connect_timeout", pooled.host, protocol=pooled.protocol.value
        )
        pooled.failed = True
        if pooled.connect_timer is not None:
            pooled.connect_timer.stop()
            pooled.connect_timer = None
        pooled.conn.close()
        self._release_handshake_slot(pooled)
        self._remove_pooled(pooled)
        orphans = list(pooled.pending)
        pooled.pending.clear()
        if pooled.opener is not None:
            orphans.insert(0, pooled.opener)
            pooled.opener = None
        if pooled.protocol is HttpProtocol.H3:
            self._demote_h3(pooled, orphans)
        else:
            self._retry_or_fail(orphans, "connect_timeout", kind="connect_retry")

    def _on_connection_reset(self, pooled: _PooledConnection) -> None:
        """A scripted ``connection_reset`` window opened on a live conn."""
        if self._closed or pooled.failed or not pooled.established:
            return
        self.stats.connection_resets += 1
        self.faults.record_fault(
            "connection_reset", pooled.host, streams=len(pooled.inflight)
        )
        self._teardown_established(pooled, "connection_reset")

    def _on_migration(self, pooled: _PooledConnection, kind: str) -> None:
        """The vantage's address changed under a live connection.

        QUIC is identified by connection ID, not by 4-tuple: the
        connection survives the change (packets lost in the rebind gap
        recover by PTO once the new path carries traffic).  TCP *is*
        its 4-tuple — the old connection is dead on arrival of the new
        address, and every stream it carried reconnects from scratch.
        """
        if self._closed or pooled.failed or not pooled.established:
            return
        pooled.migration_event = None
        streams = len(pooled.inflight)
        self.faults.record_fault(kind, pooled.host, streams=streams)
        if pooled.protocol is HttpProtocol.H3:
            self.stats.quic_migrations += 1
            self.faults.record_migration(
                pooled.host, migrated=True,
                protocol=pooled.protocol.value, streams=streams,
            )
            pooled.conn.on_path_migration()
            return
        self.stats.migration_reconnects += 1
        self.faults.record_migration(
            pooled.host, migrated=False,
            protocol=pooled.protocol.value, streams=streams,
        )
        self._teardown_established(pooled, "migration")

    def _on_transport_error(self, pooled: _PooledConnection) -> None:
        """The transport exhausted its own retry budget mid-request."""
        if self._closed or pooled.failed:
            return
        self.faults.record_recovery("request_timeout", pooled.host,
                                    reason="transport_error")
        self._teardown_established(pooled, "transport_error")

    def _on_fetch_timeout(self, pooled: _PooledConnection, fetch: _PendingFetch) -> None:
        """A single request sat in flight past the request deadline.

        The whole connection is treated as dead (a stuck stream means
        the path or peer is gone); every sibling stream re-dispatches.
        """
        if self._closed or pooled.failed:
            return
        self.faults.record_recovery("request_timeout", fetch.server.hostname)
        self._teardown_established(pooled, "request_timeout")

    def _teardown_established(self, pooled: _PooledConnection, reason: str) -> None:
        """Kill a live connection and re-dispatch everything it carried."""
        pooled.failed = True
        if pooled.reset_event is not None:
            pooled.reset_event.cancel()
            pooled.reset_event = None
        if pooled.migration_event is not None:
            pooled.migration_event.cancel()
            pooled.migration_event = None
        pooled.conn.close()
        self._remove_pooled(pooled)
        victims = list(pooled.inflight)
        pooled.inflight.clear()
        victims.extend(pooled.pending)
        pooled.pending.clear()
        for fetch in victims:
            if fetch.timer is not None:
                fetch.timer.stop()
                fetch.timer = None
        if pooled.protocol is HttpProtocol.H3 and reason != "connection_reset":
            # A QUIC connection that died of timeouts points at a
            # UDP-hostile path: demote the whole coalesce group.  Resets
            # hit TCP just as hard, so they retry on the same protocol.
            self._demote_h3(pooled, victims)
        else:
            self._retry_or_fail(victims, reason)

    def _demote_h3(self, pooled: _PooledConnection, orphans: list[_PendingFetch]) -> None:
        """H3→H2 fallback: reroute this coalesce group's fetches to TCP."""
        self._h3_broken_keys.add(pooled.coalesce_key)
        if self.alt_svc is not None:
            self.alt_svc.mark_h3_broken(pooled.host, self.loop.now)
        self.stats.h3_fallbacks += 1
        self.faults.record_recovery(
            "h3_fallback", pooled.host, orphaned=len(orphans)
        )
        for fetch in orphans:
            fetch.protocol = (
                HttpProtocol.H2
                if getattr(fetch.server, "supports_h2", True)
                else HttpProtocol.H1
            )
            self._dispatch(fetch)

    def _retry_or_fail(
        self,
        fetches: list[_PendingFetch],
        reason: str,
        kind: str = "request_retry",
    ) -> None:
        """Back off and re-dispatch, or give up once retries run out."""
        policy = self.faults.retry
        for fetch in fetches:
            host = fetch.server.hostname
            if fetch.attempts < policy.max_retries:
                delay = policy.backoff_ms(fetch.attempts)
                fetch.attempts += 1
                self.stats.retried_requests += 1
                self.faults.record_recovery(
                    kind, host, attempt=fetch.attempts, delay_ms=delay
                )
                self.loop.call_later(delay, self._dispatch, fetch)
            else:
                self._fail_fetch(fetch, reason)

    def _fail_fetch(self, fetch: _PendingFetch, reason: str) -> None:
        """Out of retries: complete the fetch with a structured failure.

        The browser still receives a record (``failed=True``), so the
        page visit terminates normally instead of hanging the loop —
        campaign-level graceful degradation builds on this.
        """
        self.stats.failed_requests += 1
        self.faults.record_recovery(
            "request_failed", fetch.server.hostname, reason=reason
        )
        now = self.loop.now
        timing = EntryTiming()
        timing.blocked = now - fetch.queued_at
        record = FetchRecord(
            url=fetch.url,
            host=fetch.server.hostname,
            protocol=fetch.protocol,
            started_at_ms=fetch.queued_at,
            timing=timing,
            response_bytes=0,
            request_bytes=fetch.request_bytes,
            reused=False,
            resumed=False,
            cache_hit=False,
            completed_at_ms=now,
            failed=True,
            error=reason,
        )
        fetch.on_complete(record)

    def _remove_pooled(self, pooled: _PooledConnection) -> None:
        """Drop a dead connection from the reuse tables."""
        if pooled.protocol.multiplexes:
            key = (pooled.coalesce_key, pooled.protocol)
            if self._multiplexed.get(key) is pooled:
                del self._multiplexed[key]
        else:
            conns = self._h1_conns.get(pooled.host)
            if conns is not None and pooled in conns:
                conns.remove(pooled)

    def _serve(self, fetch: _PendingFetch):
        """Answer one fetch: proxy cache first, then the server.

        A TCP-terminating CONNECT tunnel sees plaintext-sized responses
        it already forwarded and can replay them without touching the
        edge; a MASQUE relay never can (end-to-end QUIC is opaque), so
        caching is gated on the path's proxy model, not just on having
        a cache.  Economics deltas and cache-tier traces are folded in
        here so `_issue` stays shape-identical for legacy campaigns.
        """
        cacheable = (
            self._proxy_cache is not None
            and getattr(fetch.path, "proxy_model", None) == "connect-tunnel"
        )
        if cacheable and self._proxy_cache.lookup(fetch.resource_key):
            from repro.cdn.edge import ServeDecision

            self.stats.proxy_cache_hits += 1
            return ServeDecision(
                cache_hit=True,
                think_ms=0.0,
                protocol=fetch.protocol.value,
                headers={"x-cache": "HIT", "via": "1.1 proxy-cache"},
            )
        if fetch.accept_encoding is not None:
            decision = fetch.server.serve(
                fetch.resource_key,
                fetch.response_bytes,
                fetch.protocol.value,
                accept_encoding=fetch.accept_encoding,
                rtype=fetch.rtype,
            )
        else:
            decision = fetch.server.serve(
                fetch.resource_key, fetch.response_bytes, fetch.protocol.value
            )
        if cacheable:
            body = (
                decision.body_bytes
                if getattr(decision, "body_bytes", None) is not None
                else fetch.response_bytes
            )
            self._proxy_cache.insert(fetch.resource_key, body)
        economics = getattr(decision, "economics", None)
        if economics is not None:
            if self._economics is None:
                from repro.cdn.economics import EconomicsLedger

                self._economics = EconomicsLedger()
            self._economics.add(economics, decision.hit_tier)
            if self.obs is not None and decision.hit_tier is not None:
                tracer = self.obs.cdn_tracer()
                if tracer:
                    now = self.loop.now
                    host = fetch.server.hostname
                    if decision.hit_tier == "origin":
                        tracer.event(now, "cache:miss", host=host)
                    else:
                        tracer.event(
                            now, "cache:hit", host=host, tier=decision.hit_tier
                        )
                    tracer.event(
                        now,
                        "economics:egress",
                        host=host,
                        bytes=economics.egress_bytes,
                        encoding=decision.headers.get(
                            "content-encoding", "identity"
                        ),
                        source="cache" if economics.cache_served_bytes else "fetch",
                    )
                    if economics.origin_bytes:
                        tracer.event(
                            now,
                            "economics:origin_fetch",
                            host=host,
                            bytes=economics.origin_bytes,
                        )
        return decision

    def _issue(
        self,
        pooled: _PooledConnection,
        fetch: _PendingFetch,
        reused: bool,
        handshake=None,
    ) -> None:
        now = self.loop.now
        if self.check:
            self.check.require(
                not pooled.failed and not pooled.conn.closed,
                "pool:issue_on_dead_connection",
                "fetch issued on a torn-down connection",
                time_ms=now,
                url=fetch.url,
                host=pooled.host,
            )
            self.check.require(
                pooled.established or handshake is not None or pooled.conn.zero_rtt,
                "pool:issue_before_established",
                "fetch issued before the connection was usable",
                time_ms=now,
                url=fetch.url,
                host=pooled.host,
            )
        if self.faults is not None and self.faults.edge_outage(
            fetch.server.hostname
        ):
            # The edge refuses the request; the refusal arrives one RTT
            # later and the fetch retries with backoff (the outage
            # window may have lifted by then).
            self.faults.record_fault("edge_outage", fetch.server.hostname)
            self.loop.call_later(
                pooled.conn.path.rtt_ms,
                self._retry_or_fail,
                [fetch],
                "edge_outage",
            )
            return
        decision = self._serve(fetch)
        #: Bytes actually on the wire: compression campaigns egress the
        #: negotiated encoding's size, everything else the nominal size.
        body_bytes = (
            decision.body_bytes
            if getattr(decision, "body_bytes", None) is not None
            else fetch.response_bytes
        )
        think_ms = decision.think_ms
        if handshake is not None:
            # Connection-opening request: the server pays the TLS setup
            # CPU (certificate crypto on full handshakes, much less on
            # resumed ones) before processing the request.
            if pooled.resumed:
                think_ms += getattr(fetch.server, "resumed_setup_cpu_ms", 0.0)
            else:
                think_ms += getattr(fetch.server, "tls_setup_cpu_ms", 0.0)
        timing = EntryTiming()
        if reused or handshake is None:
            timing.blocked = now - fetch.queued_at
        else:
            # Opener: time spent waiting for a handshake slot is
            # "blocked"; the handshake itself is "connect".
            timing.blocked = pooled.connect_started_at - fetch.queued_at
            timing.connect = handshake.connect_ms
            timing.ssl = getattr(pooled.conn, "ssl_ms", None) or 0.0
        record = FetchRecord(
            url=fetch.url,
            # The request's own hostname (a coalesced connection serves
            # several hosts; HAR entries keep the per-request host).
            host=fetch.server.hostname,
            protocol=fetch.protocol,
            started_at_ms=fetch.queued_at,
            timing=timing,
            response_bytes=body_bytes,
            request_bytes=fetch.request_bytes,
            headers=dict(decision.headers),
            reused=reused,
            resumed=pooled.resumed,
            cache_hit=decision.cache_hit,
        )
        pooled.active_streams += 1
        issued_at = now
        spans = self._spans
        if spans is not None:
            request_span = spans.begin(
                "phase", f"request:{fetch.url}", now, parent=spans.current_visit
            )
        else:
            request_span = None
        transfer_span: list[int | None] = [None]
        if self.faults is not None:
            pooled.inflight.append(fetch)
            fetch.timer = Timer(
                self.loop, lambda: self._on_fetch_timeout(pooled, fetch)
            )
            fetch.timer.start(self.faults.retry.request_timeout_ms)

        def on_first_byte(t: float) -> None:
            if pooled.failed:
                # Stale delivery from a torn-down connection.  Without
                # this guard a late first byte lands *after* the fetch
                # re-dispatched, stamping the old issue time into the
                # retried entry and driving its ``wait`` negative.
                return
            record.timing.wait = t - issued_at
            if request_span is not None:
                transfer_span[0] = spans.begin(
                    "transfer", fetch.url, t, parent=request_span
                )
            if self.check:
                self.check.require(
                    record.timing.wait >= 0.0,
                    "pool:wait_nonnegative",
                    "first byte arrived before the request was issued",
                    time_ms=t,
                    url=fetch.url,
                    wait_ms=record.timing.wait,
                )

        def on_stream_complete(t: float) -> None:
            if pooled.failed:
                return  # stale delivery from a torn-down connection
            first_byte_at = issued_at + record.timing.wait
            receive = t - first_byte_at
            if -EPSILON_MS < receive < 0.0:
                # ``issued_at + wait`` re-derives the first-byte instant
                # through a float round trip, so a stream that completes
                # at that same instant can land ~1e-13 below zero; clamp
                # so the HAR never carries a negative phase.
                receive = 0.0
            record.timing.receive = receive
            if self.check:
                self.check.require(
                    record.timing.receive >= -EPSILON_MS,
                    "pool:receive_nonnegative",
                    "stream completed before its first byte",
                    time_ms=t,
                    url=fetch.url,
                    receive_ms=record.timing.receive,
                )
            record.completed_at_ms = t
            if request_span is not None:
                if transfer_span[0] is not None:
                    spans.end(transfer_span[0], t)
                spans.end(request_span, t)
            pooled.active_streams -= 1
            if fetch.timer is not None:
                fetch.timer.stop()
                fetch.timer = None
            if self.faults is not None and fetch in pooled.inflight:
                pooled.inflight.remove(fetch)
            fetch.on_complete(record)
            self._drain_h1(pooled)

        pooled.conn.request(
            fetch.request_bytes,
            body_bytes,
            think_ms=think_ms,
            on_first_byte=on_first_byte,
            on_complete=on_stream_complete,
            weight=fetch.weight,
        )

    def _drain_h1(self, pooled: _PooledConnection) -> None:
        if pooled.protocol.multiplexes or pooled.busy:
            return
        queue = self._h1_queues.get(pooled.host)
        if queue:
            fetch = queue.popleft()
            self.stats.reused_requests += 1
            self._issue(pooled, fetch, reused=True)

    # ------------------------------------------------------------------

    def connection_count(self) -> int:
        """Live connections (diagnostics)."""
        return len(self._multiplexed) + sum(len(v) for v in self._h1_conns.values())

    def close(self) -> None:
        """Terminate every connection (between page visits).

        With observability attached, this is also where per-connection
        transport stats and the pool's own counters are folded into the
        registry — a cold path, so packet accounting never slows down.
        """
        self._closed = True
        all_conns = list(self._multiplexed.values())
        for conns in self._h1_conns.values():
            all_conns.extend(conns)
        if self.check:
            counted = sum(1 for pooled in all_conns if pooled.handshake_counted)
            self.check.require(
                self._active_handshakes == counted,
                "pool:handshake_slots_balanced",
                "handshake slot count drifted from slot-holding connections",
                time_ms=self.loop.now,
                active=self._active_handshakes,
                holders=counted,
            )
            if self.faults is None:
                # Fault-free visits end only when every fetch completed:
                # nothing may still be queued, in flight, or handshaking.
                self.check.require(
                    self._active_handshakes == 0
                    and not self._handshake_queue
                    and all(
                        pooled.active_streams == 0 and not pooled.pending
                        for pooled in all_conns
                    )
                    and not any(self._h1_queues.values()),
                    "pool:drained_at_close",
                    "pool closed with work still outstanding "
                    "in a fault-free visit",
                    time_ms=self.loop.now,
                )
                self.check.require(
                    self.stats.requests
                    == self.stats.connections_created + self.stats.reused_requests,
                    "pool:request_accounting",
                    "requests != connections_created + reused_requests "
                    "in a fault-free visit",
                    time_ms=self.loop.now,
                    requests=self.stats.requests,
                    connections_created=self.stats.connections_created,
                    reused_requests=self.stats.reused_requests,
                )
            if self._economics is not None:
                # Byte conservation: every egressed byte was either
                # served from a cache tier or fetched through the
                # hierarchy — exact by construction, so any drift is a
                # bookkeeping bug.
                self.check.require(
                    self._economics.conserved,
                    "pool:economics_conserved",
                    "egress bytes != cache-served + inter-tier transfer",
                    time_ms=self.loop.now,
                    egress=self._economics.egress_bytes,
                    cache_served=self._economics.cache_served_bytes,
                    transfer=self._economics.transfer_bytes,
                )
        for pooled in all_conns:
            if self.faults is not None:
                # Disarm recovery timers: the loop outlives this pool
                # (one loop per probe, one pool per visit), so anything
                # left armed would fire into the next visit.
                if pooled.connect_timer is not None:
                    pooled.connect_timer.stop()
                    pooled.connect_timer = None
                if pooled.reset_event is not None:
                    pooled.reset_event.cancel()
                    pooled.reset_event = None
                if pooled.migration_event is not None:
                    pooled.migration_event.cancel()
                    pooled.migration_event = None
                for fetch in pooled.inflight:
                    if fetch.timer is not None:
                        fetch.timer.stop()
                        fetch.timer = None
            pooled.conn.close()
        if self.obs is not None:
            for pooled in all_conns:
                self.obs.absorb_connection(pooled.conn)
            counters = self.obs.counters
            counters.incr("pool.requests", self.stats.requests)
            counters.incr("pool.connections_created", self.stats.connections_created)
            counters.incr("pool.resumed_connections", self.stats.resumed_connections)
            counters.incr("pool.reused_requests", self.stats.reused_requests)
            counters.incr("pool.zero_rtt_connections", self.stats.zero_rtt_connections)
            # Fault-era counters only appear once nonzero, keeping
            # fault-free counter snapshots byte-identical.
            for key, value in (
                ("pool.failed_requests", self.stats.failed_requests),
                ("pool.retried_requests", self.stats.retried_requests),
                ("pool.h3_fallbacks", self.stats.h3_fallbacks),
                ("pool.connect_timeouts", self.stats.connect_timeouts),
                ("pool.connection_resets", self.stats.connection_resets),
                ("pool.quic_migrations", self.stats.quic_migrations),
                ("pool.migration_reconnects", self.stats.migration_reconnects),
                ("pool.proxy_h3_downgrades", self.stats.proxy_h3_downgrades),
                ("pool.proxy_cache_hits", self.stats.proxy_cache_hits),
            ):
                if value:
                    counters.incr(key, value)
            if self._economics is not None:
                # Hierarchy/compression campaigns only; nonzero-only so
                # legacy counter snapshots stay byte-identical.
                for key, value in self._economics.counter_items():
                    counters.incr(key, value)
        self._multiplexed.clear()
        self._h1_conns.clear()
        self._h1_queues.clear()
