"""HTTP-level datatypes: protocols and per-request timing records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class HttpProtocol(enum.Enum):
    """HTTP versions, with HAR-style wire names.

    The paper's Table II buckets requests into HTTP/2, HTTP/3 and
    "Others" (HTTP/1.x); :attr:`H1` is that last bucket.
    """

    H1 = "http/1.1"
    H2 = "h2"
    H3 = "h3"

    @property
    def transport(self) -> str:
        """Underlying transport protocol name."""
        return "quic" if self is HttpProtocol.H3 else "tcp"

    @property
    def multiplexes(self) -> bool:
        """Whether many streams share one connection (H2/H3, not H1.1)."""
        return self is not HttpProtocol.H1


@dataclass
class EntryTiming:
    """Chrome-HAR-style timing breakdown for one request (all in ms).

    The paper's entry-level metrics (Section III-C, after Cloudflare's
    taxonomy) map onto this as: *Connection time* = ``connect`` (which
    already includes ``ssl``), *Wait time* = ``wait``, *Receive time* =
    ``receive``.
    """

    blocked: float = 0.0
    dns: float = 0.0
    connect: float = 0.0
    ssl: float = 0.0
    send: float = 0.0
    wait: float = 0.0
    receive: float = 0.0

    @property
    def total(self) -> float:
        """End-to-end request duration (``ssl`` is inside ``connect``)."""
        return self.blocked + self.dns + self.connect + self.send + self.wait + self.receive

    def as_dict(self) -> dict[str, float]:
        return {
            "blocked": self.blocked,
            "dns": self.dns,
            "connect": self.connect,
            "ssl": self.ssl,
            "send": self.send,
            "wait": self.wait,
            "receive": self.receive,
        }


@dataclass
class FetchRecord:
    """Everything the pool knows about one completed fetch.

    The browser turns this into a HAR entry; the paper's analyses read
    ``reused`` (connect time 0 ⇒ reused HTTP connection, Section VI-C)
    and ``resumed`` (session-ticket resumption, Section VI-D).
    """

    url: str
    host: str
    protocol: HttpProtocol
    started_at_ms: float
    timing: EntryTiming
    response_bytes: int
    request_bytes: int
    headers: dict[str, str] = field(default_factory=dict)
    #: Request rode an existing connection (its connect time is 0).
    reused: bool = False
    #: Connection was established via a TLS session ticket.
    resumed: bool = False
    #: The edge answered from cache.
    cache_hit: bool = False
    completed_at_ms: float = 0.0
    #: The fetch gave up after exhausting its retry budget (fault
    #: injection); ``error`` carries the terminal reason.
    failed: bool = False
    error: str | None = None

    @property
    def total_ms(self) -> float:
        return self.completed_at_ms - self.started_at_ms
