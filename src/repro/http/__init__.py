"""HTTP layer: protocol semantics on top of TCP/QUIC transports.

Provides the three protocol lanes the paper's Table II distinguishes
(HTTP/1.1, HTTP/2, HTTP/3), a per-origin connection pool with
Chrome-like reuse rules (the mechanism behind the paper's Fig. 7
"reused connections" analysis), TLS session resumption wiring (Fig. 8),
and Alt-Svc based H3 discovery.
"""

from repro.http.alt_svc import AltSvcCache
from repro.http.messages import EntryTiming, FetchRecord, HttpProtocol
from repro.http.pool import ConnectionPool, PoolStats

__all__ = [
    "AltSvcCache",
    "ConnectionPool",
    "EntryTiming",
    "FetchRecord",
    "HttpProtocol",
    "PoolStats",
]
