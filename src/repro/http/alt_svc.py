"""Alt-Svc (RFC 7838) discovery cache.

Browsers normally learn that an origin speaks H3 from an
``Alt-Svc: h3=":443"`` header on a TCP-borne response, and only race
QUIC afterwards.  The paper's probes force-enable QUIC in Chrome, so
the measurement harness defaults to *direct* H3; this cache implements
the standards-path discovery for completeness and for the protocol-
advisor example.
"""

from __future__ import annotations


class AltSvcCache:
    """Host → advertised-H3 knowledge, with an expiry horizon.

    Besides positive discovery, the cache records *negative* knowledge:
    :meth:`mark_h3_broken` notes that QUIC to a host just failed (UDP
    blackholed, connect timeout), and :meth:`h3_broken` lets the browser
    demote that host to TCP until the entry expires.  This is the
    Alt-Svc-driven H3→H2 fallback path described in RFC 7838 §2.4 —
    clients that fail to reach an alternative fall back to the origin.
    """

    def __init__(
        self,
        default_max_age_ms: float = 86_400_000.0,
        broken_ttl_ms: float = 60_000.0,
    ) -> None:
        self.default_max_age_ms = default_max_age_ms
        self.broken_ttl_ms = broken_ttl_ms
        self._until: dict[str, float] = {}
        self._broken_until: dict[str, float] = {}

    def observe(self, host: str, headers: dict[str, str], now_ms: float) -> None:
        """Record an Alt-Svc advertisement seen on a response.

        Header names are matched case-insensitively (RFC 9110 §5.1) —
        real servers emit anything from ``alt-svc`` to ``Alt-Svc`` to
        ``ALT-SVC``.
        """
        alt_svc = ""
        for name, value in headers.items():
            if name.lower() == "alt-svc":
                alt_svc = value
                break
        if "h3" in alt_svc:
            self._until[host] = now_ms + self._parse_max_age(alt_svc)

    def advertise(self, host: str, now_ms: float) -> None:
        """Directly mark a host as H3-capable (server-side injection)."""
        self._until[host] = now_ms + self.default_max_age_ms

    def knows_h3(self, host: str, now_ms: float) -> bool:
        """Whether the browser currently believes ``host`` speaks H3."""
        deadline = self._until.get(host)
        if deadline is None:
            return False
        if now_ms >= deadline:
            del self._until[host]
            return False
        return True

    def mark_h3_broken(
        self, host: str, now_ms: float, ttl_ms: float | None = None
    ) -> None:
        """Note that QUIC to ``host`` just failed; demote it for a while."""
        self._broken_until[host] = now_ms + (
            self.broken_ttl_ms if ttl_ms is None else ttl_ms
        )

    def h3_broken(self, host: str, now_ms: float) -> bool:
        """Whether ``host`` is currently demoted to TCP."""
        deadline = self._broken_until.get(host)
        if deadline is None:
            return False
        if now_ms >= deadline:
            del self._broken_until[host]
            return False
        return True

    def clear(self) -> None:
        self._until.clear()
        self._broken_until.clear()

    def _parse_max_age(self, alt_svc: str) -> float:
        for part in alt_svc.replace(";", " ").split():
            if part.startswith("ma="):
                try:
                    return float(part[3:].strip('"')) * 1000.0
                except ValueError:
                    break
        return self.default_max_age_ms
