"""Alt-Svc (RFC 7838) discovery cache.

Browsers normally learn that an origin speaks H3 from an
``Alt-Svc: h3=":443"`` header on a TCP-borne response, and only race
QUIC afterwards.  The paper's probes force-enable QUIC in Chrome, so
the measurement harness defaults to *direct* H3; this cache implements
the standards-path discovery for completeness and for the protocol-
advisor example.
"""

from __future__ import annotations


class AltSvcCache:
    """Host → advertised-H3 knowledge, with an expiry horizon."""

    def __init__(self, default_max_age_ms: float = 86_400_000.0) -> None:
        self.default_max_age_ms = default_max_age_ms
        self._until: dict[str, float] = {}

    def observe(self, host: str, headers: dict[str, str], now_ms: float) -> None:
        """Record an Alt-Svc advertisement seen on a response."""
        alt_svc = headers.get("alt-svc", headers.get("Alt-Svc", ""))
        if "h3" in alt_svc:
            self._until[host] = now_ms + self._parse_max_age(alt_svc)

    def advertise(self, host: str, now_ms: float) -> None:
        """Directly mark a host as H3-capable (server-side injection)."""
        self._until[host] = now_ms + self.default_max_age_ms

    def knows_h3(self, host: str, now_ms: float) -> bool:
        """Whether the browser currently believes ``host`` speaks H3."""
        deadline = self._until.get(host)
        if deadline is None:
            return False
        if now_ms >= deadline:
            del self._until[host]
            return False
        return True

    def clear(self) -> None:
        self._until.clear()

    def _parse_max_age(self, alt_svc: str) -> float:
        for part in alt_svc.replace(";", " ").split():
            if part.startswith("ma="):
                try:
                    return float(part[3:].strip('"')) * 1000.0
                except ValueError:
                    break
        return self.default_max_age_ms
