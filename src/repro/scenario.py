"""Scenarios: one named bundle for transport + network + fault config.

Before this module, wiring up a run meant assembling a
:class:`~repro.transport.config.TransportConfig`, the netem-style
shaping knobs (``loss_rate`` / ``rate_mbps``) and — since the fault
subsystem — a :class:`~repro.faults.FaultProfile` by hand, in the right
places inside a :class:`~repro.measurement.campaign.CampaignConfig`.
A :class:`Scenario` consolidates the three under one name and renders
the campaign config in a single call::

    config = preset("udp-blocked").campaign_config(trace=True)

Presets cover the paper baseline and the common fault studies; the
builder methods (:meth:`with_faults`, :meth:`with_loss`) derive
variants without mutating anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.cdn.compression import CompressionConfig
from repro.cdn.hierarchy import HierarchyConfig, hierarchy_preset
from repro.faults import FAULT_PROFILES, FaultProfile
from repro.measurement.campaign import CampaignConfig
from repro.netsim.proxy import ProxyConfig
from repro.transport.config import TransportConfig


@dataclass(frozen=True)
class Scenario:
    """A named, immutable bundle of run conditions."""

    name: str
    #: Transport-level configuration shared by all probes.
    transport: TransportConfig = field(default_factory=TransportConfig)
    #: netem-style loss imposed at every probe.
    loss_rate: float = 0.0
    #: Probe access-link rate (None = unshaped).
    rate_mbps: float | None = 50.0
    #: Scripted fault profile (None = fault machinery dormant).
    faults: FaultProfile | None = None
    #: Run every visit under the invariant checker (``repro.check``).
    strict: bool = False
    #: Optional proxy hop between client and edge (None = direct paths).
    proxy: ProxyConfig | None = None
    #: Multi-tier edge cache hierarchy (None = legacy flat LRU).
    cache_hierarchy: HierarchyConfig | None = None
    #: Compression negotiation (None = encoding machinery dormant).
    compression: CompressionConfig | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")

    # -- builders ------------------------------------------------------

    def with_faults(self, faults: FaultProfile | str | None) -> "Scenario":
        """This scenario with a different fault profile.

        Accepts a profile object, a :data:`FAULT_PROFILES` preset name,
        or ``None`` to disarm faults.  The scenario name gains the
        profile name as a suffix.
        """
        if isinstance(faults, str):
            faults = FAULT_PROFILES[faults]
        suffix = faults.name if faults is not None else "no-faults"
        return replace(self, name=f"{self.name}+{suffix}", faults=faults)

    def with_loss(self, loss_rate: float) -> "Scenario":
        """This scenario with a different netem loss rate."""
        return replace(
            self, name=f"{self.name}+loss{loss_rate:g}", loss_rate=loss_rate
        )

    def with_proxy(self, proxy: ProxyConfig | str | None) -> "Scenario":
        """This scenario with a proxy hop on every path.

        Accepts a :class:`ProxyConfig`, a proxy *model* name
        (``"connect-tunnel"`` / ``"masque-relay"``) for the default
        configuration of that model, or ``None`` to go direct.  The
        scenario name gains the model as a suffix.
        """
        if isinstance(proxy, str):
            proxy = ProxyConfig(model=proxy)
        suffix = proxy.model if proxy is not None else "direct"
        return replace(self, name=f"{self.name}+{suffix}", proxy=proxy)

    def with_cache_tiers(
        self, hierarchy: HierarchyConfig | str | None
    ) -> "Scenario":
        """This scenario with a multi-tier edge cache chain.

        Accepts a :class:`HierarchyConfig`, a :data:`~repro.cdn.
        hierarchy.HIERARCHY_PRESETS` name (``"edge-regional"`` /
        ``"edge-metro-regional"``), or ``None`` for the flat cache.
        """
        if isinstance(hierarchy, str):
            hierarchy = hierarchy_preset(hierarchy)
        suffix = (
            "+".join(tier.name for tier in hierarchy.tiers)
            if hierarchy is not None
            else "flat-cache"
        )
        return replace(
            self, name=f"{self.name}+{suffix}", cache_hierarchy=hierarchy
        )

    def with_compression(
        self, compression: CompressionConfig | float | None
    ) -> "Scenario":
        """This scenario with compression negotiation on edges.

        Accepts a :class:`CompressionConfig`, a bare float (treated as
        ``identity_request_ratio`` — the fraction of clients demanding
        identity encoding, the Lin et al. amplification knob), or
        ``None`` to turn encoding off.
        """
        if isinstance(compression, (int, float)) and not isinstance(
            compression, bool
        ):
            compression = CompressionConfig(
                identity_request_ratio=float(compression)
            )
        suffix = (
            f"compress{compression.identity_request_ratio:g}"
            if compression is not None
            else "no-compress"
        )
        return replace(
            self, name=f"{self.name}+{suffix}", compression=compression
        )

    def with_transport(self, transport: TransportConfig) -> "Scenario":
        """This scenario with a different transport configuration."""
        return replace(self, transport=transport)

    def with_strict(self, strict: bool = True) -> "Scenario":
        """This scenario with invariant checking on (or off)."""
        return replace(self, strict=strict)

    # -- rendering -----------------------------------------------------

    def config_hash(self, **overrides: Any) -> str:
        """Content hash of this scenario's rendered campaign config.

        The scenario *name* is presentation metadata and does not enter
        the hash — two differently-named scenarios that render the same
        :class:`CampaignConfig` hash identically, exactly like the
        result store's visit keys.
        """
        from repro.store.keys import campaign_config_hash

        return campaign_config_hash(self.campaign_config(**overrides))

    def campaign_config(self, **overrides: Any) -> CampaignConfig:
        """Render this scenario as a :class:`CampaignConfig`.

        ``overrides`` pass through to the config verbatim (e.g.
        ``seed=3``, ``trace=True``) and win over scenario fields.
        """
        base = dict(
            transport_config=self.transport,
            loss_rate=self.loss_rate,
            rate_mbps=self.rate_mbps,
            fault_profile=self.faults,
            strict=self.strict,
            proxy=self.proxy,
            cache_hierarchy=self.cache_hierarchy,
            compression=self.compression,
        )
        base.update(overrides)
        return CampaignConfig(**base)


def _build_scenarios() -> dict[str, Scenario]:
    paper = Scenario(name="paper-default")
    return {
        "paper-default": paper,
        # Fig. 9's heavy end: 1% netem loss, faults dormant.
        "lossy": Scenario(name="lossy", loss_rate=0.01),
        # Every host's UDP blackholed: the H3-fallback stress scenario.
        "udp-blocked": Scenario(
            name="udp-blocked", faults=FAULT_PROFILES["udp-blocked"]
        ),
        # Tiered CDN with compression negotiation: the hierarchy/
        # economics scenarios build on this.
        "cdn-hierarchy": Scenario(
            name="cdn-hierarchy",
            cache_hierarchy=hierarchy_preset("edge-regional"),
            compression=CompressionConfig(),
        ),
    }


#: Named presets, ready to render.
SCENARIOS: dict[str, Scenario] = _build_scenarios()


def preset(name: str) -> Scenario:
    """Look up a named scenario preset."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}"
        ) from None
