PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench-smoke lint trace-smoke faults-smoke check-smoke store-smoke obs-smoke stream-smoke proxy-smoke cdn-smoke

# Tier-1 suite. tests/test_parallel.py runs 2- and 4-worker campaigns
# against the serial baseline, so the parallel path is exercised on
# every `make test` and cannot rot silently.
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Quick perf sanity: a small campaign (parallel cross-check when ≥2
# CPUs are available), substrate events/sec for every built kernel,
# tracing overhead and the analytic fast path — then hard gates:
# the default kernel must clear 300k chained events/s and tracer-on
# CPU overhead must stay under 35%.  The overhead gate takes the
# SMALLER of the artifact's two estimators (cross-round min/min and
# paired within-round median): host interference only ever inflates
# CPU time and hits the two estimators independently, while a real
# regression (the pre-optimization tracer cost +77%) inflates both.
# The smoke ceiling is wider than the documented <20% reference-scale
# bar (recorded in BENCH_campaign.json, measured over longer runs)
# because ~1 s smoke runs on shared hosts carry tens-of-percent
# CPU-time noise even after pairing.  Numbers come from the artifact,
# so the gate and the record can never disagree.
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_campaign.py \
		--pages 8 --sites 8 --workers 2 --repeats 5 \
		--sections parallel,tracing,fastpath,store,substrate \
		--out BENCH_campaign_smoke.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; b = json.load(open('BENCH_campaign_smoke.json')); \
	kern = b['substrate']['kernel_events_per_sec']; \
	assert kern > 300_000, f'kernel floor: {kern:,.0f} events/s < 300k'; \
	tr = min(b['tracing']['overhead_cpu_pct'], \
	         b['tracing']['overhead_cpu_pct_paired']); \
	assert tr < 35.0, f'tracer-on CPU overhead {tr:.1f}%% breaches the 35%% ceiling'; \
	fp = b['fast_path']; \
	assert fp['cpu_speedup'] and fp['cpu_speedup'] > 1.0, fp; \
	assert fp['plt_worst_rel_delta_pct'] < 0.1, fp; \
	print(f\"bench-smoke: kernel {kern:,.0f} ev/s, \" \
	      f\"tracing {tr:+.1f}%% cpu (gated estimate), fast path \" \
	      f\"x{fp['cpu_speedup']:.2f} \" \
	      f\"({fp['plt_identical']}/{fp['visits']} PLTs identical)\")"

# Observability smoke: run a traced smoke campaign, then validate the
# exported JSONL trace against the schema and check the manifest exists.
trace-smoke:
	rm -rf .trace_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2 --counters \
		--trace-dir .trace_smoke --json .trace_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.schema .trace_smoke/trace.jsonl
	test -f .trace_smoke/run.json

# Fault-injection smoke: run a campaign under full UDP blackholing plus
# the fallback sweep, validate the trace (fault:/recovery: events) and
# check the manifest records the sweep.
faults-smoke:
	rm -rf .faults_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2,fig-fallback \
		--faults udp-blocked --counters \
		--trace-dir .faults_smoke --json .faults_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.schema .faults_smoke/trace.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; m = json.load(open('.faults_smoke/run.json')); \
	assert m['invocation']['faults'] == 'udp-blocked', m['invocation']; \
	sweep = m['fallback_sweep']; \
	assert sweep['monotone_fallback'] is True, sweep; \
	print('faults-smoke: manifest ok,', len(sweep['fallback_rates']), 'sweep points')"

# Proxy/migration smoke: fig-migration at smoke scale under --strict
# (the CONNECT tunnel must erase the migration edge and downgrade all
# H3), plus one proxied main campaign per proxy model so both trace
# families — migration:* (masque relay, QUIC migrates / TCP
# reconnects) and proxy:* (connect tunnel, H3 downgraded) — land in
# trace.jsonl and validate against the obs schema.
proxy-smoke:
	rm -rf .proxy_smoke
	mkdir -p .proxy_smoke/tunnel
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2,fig-migration \
		--proxy masque-relay --faults nat-rebind --strict --counters \
		--trace-dir .proxy_smoke --json .proxy_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.schema .proxy_smoke/trace.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2 \
		--proxy connect-tunnel --faults nat-rebind --strict \
		--trace-dir .proxy_smoke/tunnel
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.schema .proxy_smoke/tunnel/trace.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; m = json.load(open('.proxy_smoke/run.json')); \
	assert m['invocation']['proxy'] == 'masque-relay', m['invocation']; \
	assert m['invocation']['strict'] is True, m['invocation']; \
	sweep = m['migration_sweep']; \
	assert sweep['tunnel_erases_migration_edge'] is True, sweep; \
	assert sweep['tunnel_downgrades_h3'] is True, sweep; \
	relay = {n for n in (json.loads(l)['name'] for l in open('.proxy_smoke/trace.jsonl'))}; \
	assert 'migration:migrated' in relay and 'migration:reconnect' in relay, sorted(relay); \
	tunnel = {n for n in (json.loads(l)['name'] for l in open('.proxy_smoke/tunnel/trace.jsonl'))}; \
	assert 'proxy:h3_downgrade' in tunnel and 'migration:migrated' not in tunnel, sorted(tunnel); \
	print('proxy-smoke: manifest ok,', len(sweep['cells']), 'sweep cells,', \
	      'migration/proxy trace families validated')"

# Cache-hierarchy smoke: the amplification scenario end to end under
# --strict.  Runs table2 (materializes a traced main campaign with a
# tier hierarchy + full-attack compression, so the cache:/economics:
# trace families land in trace.jsonl) plus fig-amplification, then
# gates: the egress/ingress factor must exceed 1 in every attack cell
# and be monotone in the identity-demand ratio (checked explicitly
# from the per-cell payloads, not just the experiment's own booleans),
# the economics conservation invariant must have held (strict mode
# would have aborted otherwise), the manifest must record the
# hierarchy flags and the classifier-disagreement realism section, and
# the new trace families must validate against the obs schema.
cdn-smoke:
	rm -rf .cdn_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2,fig-amplification \
		--cache-tiers edge-regional --compression 1.0 --strict --counters \
		--trace-dir .cdn_smoke --json .cdn_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.schema .cdn_smoke/trace.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; r = json.load(open('.cdn_smoke/results.json')); \
	amp = r['experiments']['fig-amplification']['data']; \
	assert amp['amplification_exceeds_unity'] is True, amp; \
	assert amp['amplification_monotone'] is True, amp; \
	cells = sorted(amp['cells'].items(), key=lambda kv: float(kv[0].split('-', 1)[1])); \
	factors = [c['amplification'] for _, c in cells]; \
	assert all(f > 1.0 for _, f in zip(cells[1:], factors[1:])), factors; \
	assert all(a <= b + 1e-9 for a, b in zip(factors, factors[1:])), factors; \
	m = r['manifest']; \
	assert m['invocation']['cache_tiers'] == 'edge-regional', m['invocation']; \
	assert m['invocation']['compression'] == 1.0, m['invocation']; \
	assert m['invocation']['strict'] is True, m['invocation']; \
	cls = m['classifiers']; \
	assert cls['entries'] > 0 and 0.0 <= cls['disagreement_rate'] <= 1.0, cls; \
	c = m['counters']['counters']; \
	assert c['economics.egress_bytes'] == \
	    c['economics.cache_served_bytes'] + c.get('economics.transfer_bytes', 0), c; \
	assert c['cache.hits.edge'] > 0, c; \
	names = {json.loads(l)['name'] for l in open('.cdn_smoke/trace.jsonl')}; \
	wanted = {'cache:hit', 'economics:egress'}; \
	assert wanted <= names, sorted(wanted - names); \
	print(f\"cdn-smoke: amplification {' -> '.join(f'{f:.2f}' for f in factors)}, \" \
	      f\"classifier disagreement {cls['disagreement_rate']:.1%}, \" \
	      'cache/economics trace families validated')"

# Invariant-checking smoke: run experiments under --strict (any
# violation aborts with a non-zero exit), confirm the manifest records
# strict mode, then cross-check HAR timings against qlog traces with
# the differential validator.
check-smoke:
	rm -rf .check_smoke
	mkdir -p .check_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments fig2,fig-fallback \
		--strict --json .check_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; m = json.load(open('.check_smoke/results.json'))['manifest']; \
	assert m['invocation']['strict'] is True, m['invocation']; \
	print('check-smoke: strict manifest ok')"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.check.har_vs_trace \
		--sites 6 --pages 4 --seed 7

# Result-store smoke: the persistence contract end to end.
# 1. Run a campaign twice against one store; the second run must be
#    100% hits and its experiment output byte-identical to the first.
# 2. Simulate an interrupted campaign, --resume it, and check the
#    journal recovered the completed visits.
# 3. `python -m repro.store verify` must find the store clean.
store-smoke:
	rm -rf .store_smoke
	mkdir -p .store_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2 \
		--store .store_smoke/st --run smoke --json .store_smoke/run1.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2 \
		--store .store_smoke/st --run smoke --json .store_smoke/run2.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; \
	a = json.load(open('.store_smoke/run1.json')); \
	b = json.load(open('.store_smoke/run2.json')); \
	assert a['experiments'] == b['experiments'], 'warm replay diverged'; \
	sa = a['manifest']['store']['stats']; sb = b['manifest']['store']['stats']; \
	assert sa['hits'] == 0 and sa['misses'] > 0, sa; \
	assert sb['misses'] == 0 and sb['hit_rate'] == 1.0, sb; \
	print('store-smoke: warm run 100%% hits, output bit-identical')"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import repro.measurement.parallel as par; \
	from repro.measurement import Campaign, CampaignConfig; \
	from repro.store import ResultStore; \
	from repro.web.topsites import GeneratorConfig, cached_universe; \
	uni = cached_universe(GeneratorConfig(n_sites=6), seed=7); \
	pages = uni.pages[:4]; config = CampaignConfig(seed=3); \
	store = ResultStore('.store_smoke/st'); \
	real = par.measure_visit_outcome; calls = {'n': 0}; \
	exec('def flaky(*a, **k):\n calls[\"n\"] += 1\n if calls[\"n\"] > 2: raise KeyboardInterrupt\n return real(*a, **k)'); \
	par.measure_visit_outcome = flaky; \
	exec('try:\n Campaign(uni, config).run(pages, store=store, run_name=\"interrupted\")\nexcept KeyboardInterrupt:\n pass'); \
	par.measure_visit_outcome = real; \
	assert not store.run_info('interrupted').complete; \
	assert store.run_info('interrupted').journaled == 2; \
	r = Campaign(uni, config).run(pages, store=store, run_name='interrupted', resume=True); \
	assert r.store_stats.resumed == 2 and r.store_stats.misses == 2, r.store_stats; \
	assert store.run_info('interrupted').complete; store.close(); \
	print('store-smoke: interrupt/resume recovered 2 journaled visits')"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.store verify .store_smoke/st
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.store stats .store_smoke/st

# Deep-telemetry smoke: the full observability stack end to end.
# 1. Run a smoke campaign with tracing, sim-time metrics sampling,
#    spans, loop profiling and live progress; schema-validate every
#    exported JSONL family (trace, metrics, spans).
# 2. Export qlog 0.3 (qvis) and Chrome trace-event JSON (Perfetto) and
#    check the required top-level fields of both formats.
# 3. Check the run manifest carries the metrics/spans/progress/
#    loop_profile sections.
# 4. Gate sampler cost from the benchmark's position-balanced paired
#    estimator: sampler-on CPU overhead must stay under 15% (smaller
#    of the two estimators, same rationale as bench-smoke), and the
#    off-vs-off canary — identical code on both sides, so anything it
#    reads is host noise — must sit within ±2%, which doubles as the
#    disabled-path overhead bound this host can certify.  The canary
#    gate reads the smaller of the paired-median and min/min forms:
#    shared hosts show warm-up drift and ±5% adjacent-run jitter that
#    can push any single estimator past 2% on ~0.7 s runs, but series
#    minima of identical work converge (noise only ever slows a run),
#    so at least one estimator reads ~0 unless the measurement itself
#    is broken.  The history lands in BENCH_campaign_obs.json.
obs-smoke:
	rm -rf .obs_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2 --counters \
		--trace-dir .obs_smoke --metrics-interval 5 --spans \
		--profile --progress --json .obs_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.schema \
		.obs_smoke/trace.jsonl .obs_smoke/metrics.jsonl .obs_smoke/spans.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.export qlog \
		.obs_smoke/trace.jsonl -o .obs_smoke/trace.qlog
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.export perfetto \
		.obs_smoke/spans.jsonl -o .obs_smoke/perfetto.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; q = json.load(open('.obs_smoke/trace.qlog')); \
	assert q['qlog_version'] == '0.3', q['qlog_version']; \
	assert q['qlog_format'] == 'JSON' and q['traces'], 'qlog fields missing'; \
	t = q['traces'][0]; \
	assert 'vantage_point' in t and 'common_fields' in t and t['events'], t.keys(); \
	p = json.load(open('.obs_smoke/perfetto.json')); \
	xs = [e for e in p['traceEvents'] if e.get('ph') == 'X']; \
	assert xs and all({'name','ts','dur','pid','tid'} <= set(e) for e in xs), 'bad trace events'; \
	m = json.load(open('.obs_smoke/run.json')); \
	missing = [k for k in ('metrics','spans','progress','loop_profile') if k not in m]; \
	assert not missing, f'manifest sections missing: {missing}'; \
	assert m['metrics']['records'] > 0 and m['spans']['records'] > 0, m; \
	print(f\"obs-smoke: qlog {len(q['traces'])} traces, \" \
	      f\"perfetto {len(xs)} spans, manifest sections ok\")"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_campaign.py \
		--pages 6 --sites 8 --repeats 5 --sections metrics \
		--out BENCH_campaign_obs.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; b = json.load(open('BENCH_campaign_obs.json')); \
	m = b['metrics_sampler']; \
	on = min(m['overhead_cpu_pct'], m['overhead_cpu_pct_paired']); \
	assert on < 15.0, f'sampler-on CPU overhead {on:.1f}%% breaches the 15%% ceiling'; \
	canary = min(abs(m['disabled_canary_pct']), \
	             abs(m['disabled_canary_minmin_pct'])); \
	assert canary < 2.0, f'off-vs-off canary {canary:.1f}%% outside the 2%% bound'; \
	assert m['fingerprint_identical'] is True, m; \
	print(f\"obs-smoke: sampler {on:+.1f}%% cpu (gated estimate), \" \
	      f\"canary {canary:.1f}%%, {m['samples']} samples, results identical\")"

# Streaming-executor smoke: the constant-memory campaign contract.
# 1. The summary folded while the campaign streams must be
#    field-identical to folding the materialized visits afterwards,
#    serial and pooled, and summary_only must drop the visits.
# 2. A lazily generated universe must agree with a larger one on every
#    shared page index (prefix identity).
# 3. Peak RSS of a 2048-page summary-only campaign must stay within
#    1.15x of a 256-page run — each point measured in its own
#    subprocess because ru_maxrss is a process-lifetime high-water
#    mark.  The ratio lands in BENCH_campaign_stream.json's history.
stream-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	from repro.measurement import CampaignConfig, CampaignPlan, execute; \
	from repro.measurement.summary import CampaignSummary; \
	from repro.web.topsites import GeneratorConfig, cached_universe, lazy_universe; \
	small = GeneratorConfig(n_sites=6, resources_per_page_median=12.0, \
	                        min_resources=5, max_resources=25); \
	uni = cached_universe(small, seed=21); \
	config = CampaignConfig(visits_per_page=1, max_vantage_points=2, seed=7); \
	serial = execute(CampaignPlan(universe=uni, sim=config)); \
	refold = CampaignSummary.from_result(serial, universe=uni); \
	assert serial.summary.to_dict() == refold.to_dict(), 'stream fold != materialized fold'; \
	pooled = execute(CampaignPlan(universe=uni, sim=config, workers=2, \
	                              chunk_size=1, summary_only=True)); \
	assert pooled.summary.to_dict() == serial.summary.to_dict(), 'pooled summary diverged'; \
	assert pooled.paired_visits == [], 'summary_only retained visits'; \
	lazy = lazy_universe(small, seed=21); \
	big = lazy_universe(GeneratorConfig(n_sites=64, resources_per_page_median=12.0, \
	                                    min_resources=5, max_resources=25), seed=21); \
	assert all(lazy.page_at(i) == big.page_at(i) for i in range(6)), \
	    'lazy prefix identity broken'; \
	print('stream-smoke: fold equivalence + lazy prefix identity ok')"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_campaign.py \
		--pages 4 --sites 6 --sections memory \
		--out BENCH_campaign_stream.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; b = json.load(open('BENCH_campaign_stream.json')); \
	m = b['streaming_memory']; ratio = m['rss_growth_ratio']; \
	assert ratio < 1.15, f'peak RSS grew {ratio:.3f}x between page counts'; \
	print(f\"stream-smoke: peak RSS {m['rss_small_kb'] // 1024} MB \" \
	      f\"({m['pages_small']} pages) -> {m['rss_large_kb'] // 1024} MB \" \
	      f\"({m['pages_large']} pages), growth {ratio:.3f}x < 1.15x\")"

# No third-party linters in the container; bytecode compilation catches
# syntax errors and obvious breakage across the whole tree.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
