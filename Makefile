PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench-smoke lint trace-smoke faults-smoke check-smoke store-smoke

# Tier-1 suite. tests/test_parallel.py runs 2- and 4-worker campaigns
# against the serial baseline, so the parallel path is exercised on
# every `make test` and cannot rot silently.
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Quick perf sanity: a small campaign (parallel cross-check when ≥2
# CPUs are available), substrate events/sec for every built kernel,
# tracing overhead and the analytic fast path — then hard gates:
# the default kernel must clear 300k chained events/s and tracer-on
# CPU overhead must stay under 35%.  The overhead gate takes the
# SMALLER of the artifact's two estimators (cross-round min/min and
# paired within-round median): host interference only ever inflates
# CPU time and hits the two estimators independently, while a real
# regression (the pre-optimization tracer cost +77%) inflates both.
# The smoke ceiling is wider than the documented <20% reference-scale
# bar (recorded in BENCH_campaign.json, measured over longer runs)
# because ~1 s smoke runs on shared hosts carry tens-of-percent
# CPU-time noise even after pairing.  Numbers come from the artifact,
# so the gate and the record can never disagree.
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_campaign.py \
		--pages 8 --sites 8 --workers 2 --repeats 5 \
		--out BENCH_campaign_smoke.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; b = json.load(open('BENCH_campaign_smoke.json')); \
	kern = b['substrate']['kernel_events_per_sec']; \
	assert kern > 300_000, f'kernel floor: {kern:,.0f} events/s < 300k'; \
	tr = min(b['tracing']['overhead_cpu_pct'], \
	         b['tracing']['overhead_cpu_pct_paired']); \
	assert tr < 35.0, f'tracer-on CPU overhead {tr:.1f}%% breaches the 35%% ceiling'; \
	fp = b['fast_path']; \
	assert fp['cpu_speedup'] and fp['cpu_speedup'] > 1.0, fp; \
	assert fp['plt_worst_rel_delta_pct'] < 0.1, fp; \
	print(f\"bench-smoke: kernel {kern:,.0f} ev/s, \" \
	      f\"tracing {tr:+.1f}%% cpu (gated estimate), fast path \" \
	      f\"x{fp['cpu_speedup']:.2f} \" \
	      f\"({fp['plt_identical']}/{fp['visits']} PLTs identical)\")"

# Observability smoke: run a traced smoke campaign, then validate the
# exported JSONL trace against the schema and check the manifest exists.
trace-smoke:
	rm -rf .trace_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2 --counters \
		--trace-dir .trace_smoke --json .trace_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.schema .trace_smoke/trace.jsonl
	test -f .trace_smoke/run.json

# Fault-injection smoke: run a campaign under full UDP blackholing plus
# the fallback sweep, validate the trace (fault:/recovery: events) and
# check the manifest records the sweep.
faults-smoke:
	rm -rf .faults_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2,fig-fallback \
		--faults udp-blocked --counters \
		--trace-dir .faults_smoke --json .faults_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.schema .faults_smoke/trace.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; m = json.load(open('.faults_smoke/run.json')); \
	assert m['invocation']['faults'] == 'udp-blocked', m['invocation']; \
	sweep = m['fallback_sweep']; \
	assert sweep['monotone_fallback'] is True, sweep; \
	print('faults-smoke: manifest ok,', len(sweep['fallback_rates']), 'sweep points')"

# Invariant-checking smoke: run experiments under --strict (any
# violation aborts with a non-zero exit), confirm the manifest records
# strict mode, then cross-check HAR timings against qlog traces with
# the differential validator.
check-smoke:
	rm -rf .check_smoke
	mkdir -p .check_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments fig2,fig-fallback \
		--strict --json .check_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; m = json.load(open('.check_smoke/results.json'))['manifest']; \
	assert m['invocation']['strict'] is True, m['invocation']; \
	print('check-smoke: strict manifest ok')"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.check.har_vs_trace \
		--sites 6 --pages 4 --seed 7

# Result-store smoke: the persistence contract end to end.
# 1. Run a campaign twice against one store; the second run must be
#    100% hits and its experiment output byte-identical to the first.
# 2. Simulate an interrupted campaign, --resume it, and check the
#    journal recovered the completed visits.
# 3. `python -m repro.store verify` must find the store clean.
store-smoke:
	rm -rf .store_smoke
	mkdir -p .store_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2 \
		--store .store_smoke/st --run smoke --json .store_smoke/run1.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2 \
		--store .store_smoke/st --run smoke --json .store_smoke/run2.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; \
	a = json.load(open('.store_smoke/run1.json')); \
	b = json.load(open('.store_smoke/run2.json')); \
	assert a['experiments'] == b['experiments'], 'warm replay diverged'; \
	sa = a['manifest']['store']['stats']; sb = b['manifest']['store']['stats']; \
	assert sa['hits'] == 0 and sa['misses'] > 0, sa; \
	assert sb['misses'] == 0 and sb['hit_rate'] == 1.0, sb; \
	print('store-smoke: warm run 100%% hits, output bit-identical')"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import repro.measurement.parallel as par; \
	from repro.measurement import Campaign, CampaignConfig; \
	from repro.store import ResultStore; \
	from repro.web.topsites import GeneratorConfig, cached_universe; \
	uni = cached_universe(GeneratorConfig(n_sites=6), seed=7); \
	pages = uni.pages[:4]; config = CampaignConfig(seed=3); \
	store = ResultStore('.store_smoke/st'); \
	real = par.measure_visit_outcome; calls = {'n': 0}; \
	exec('def flaky(*a, **k):\n calls[\"n\"] += 1\n if calls[\"n\"] > 2: raise KeyboardInterrupt\n return real(*a, **k)'); \
	par.measure_visit_outcome = flaky; \
	exec('try:\n Campaign(uni, config).run(pages, store=store, run_name=\"interrupted\")\nexcept KeyboardInterrupt:\n pass'); \
	par.measure_visit_outcome = real; \
	assert not store.run_info('interrupted').complete; \
	assert store.run_info('interrupted').journaled == 2; \
	r = Campaign(uni, config).run(pages, store=store, run_name='interrupted', resume=True); \
	assert r.store_stats.resumed == 2 and r.store_stats.misses == 2, r.store_stats; \
	assert store.run_info('interrupted').complete; store.close(); \
	print('store-smoke: interrupt/resume recovered 2 journaled visits')"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.store verify .store_smoke/st
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.store stats .store_smoke/st

# No third-party linters in the container; bytecode compilation catches
# syntax errors and obvious breakage across the whole tree.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
