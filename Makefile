PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench-smoke lint

# Tier-1 suite. tests/test_parallel.py runs 2- and 4-worker campaigns
# against the serial baseline, so the parallel path is exercised on
# every `make test` and cannot rot silently.
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Quick perf sanity: a small campaign serially and with 2 workers
# (includes the determinism cross-check), plus substrate events/sec.
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_campaign.py \
		--pages 8 --sites 8 --workers 2 --out BENCH_campaign_smoke.json

# No third-party linters in the container; bytecode compilation catches
# syntax errors and obvious breakage across the whole tree.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
