PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench-smoke lint trace-smoke faults-smoke check-smoke

# Tier-1 suite. tests/test_parallel.py runs 2- and 4-worker campaigns
# against the serial baseline, so the parallel path is exercised on
# every `make test` and cannot rot silently.
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Quick perf sanity: a small campaign serially and with 2 workers
# (includes the determinism cross-check), plus substrate events/sec.
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_campaign.py \
		--pages 8 --sites 8 --workers 2 --out BENCH_campaign_smoke.json

# Observability smoke: run a traced smoke campaign, then validate the
# exported JSONL trace against the schema and check the manifest exists.
trace-smoke:
	rm -rf .trace_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2 --counters \
		--trace-dir .trace_smoke --json .trace_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.schema .trace_smoke/trace.jsonl
	test -f .trace_smoke/run.json

# Fault-injection smoke: run a campaign under full UDP blackholing plus
# the fallback sweep, validate the trace (fault:/recovery: events) and
# check the manifest records the sweep.
faults-smoke:
	rm -rf .faults_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments table2,fig-fallback \
		--faults udp-blocked --counters \
		--trace-dir .faults_smoke --json .faults_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.obs.schema .faults_smoke/trace.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; m = json.load(open('.faults_smoke/run.json')); \
	assert m['invocation']['faults'] == 'udp-blocked', m['invocation']; \
	sweep = m['fallback_sweep']; \
	assert sweep['monotone_fallback'] is True, sweep; \
	print('faults-smoke: manifest ok,', len(sweep['fallback_rates']), 'sweep points')"

# Invariant-checking smoke: run experiments under --strict (any
# violation aborts with a non-zero exit), confirm the manifest records
# strict mode, then cross-check HAR timings against qlog traces with
# the differential validator.
check-smoke:
	rm -rf .check_smoke
	mkdir -p .check_smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.cli \
		--scale smoke --sites 6 --experiments fig2,fig-fallback \
		--strict --json .check_smoke/results.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json; m = json.load(open('.check_smoke/results.json'))['manifest']; \
	assert m['invocation']['strict'] is True, m['invocation']; \
	print('check-smoke: strict manifest ok')"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.check.har_vs_trace \
		--sites 6 --pages 4 --seed 7

# No third-party linters in the container; bytecode compilation catches
# syntax errors and obvious breakage across the whole tree.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
